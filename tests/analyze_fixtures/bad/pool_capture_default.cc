// Fixture: capture-defaults and `this` crossing the thread boundary.
//
// expect-analyze: pool-capture
// expect-analyze: pool-capture
// expect-analyze: pool-capture
// expect-analyze: pool-capture

struct ThreadPool {
  template <typename F>
  void Submit(F f);
};

template <typename F>
void RunForAll(int count, ThreadPool* pool, F f);

void Defaults(ThreadPool& pool, int n) {
  int total = 0;
  pool.Submit([&] { total += n; });
  pool.Submit([=] { (void)n; });
  RunForAll(n, &pool, [&](int i) { total += i; });
}

struct Holder {
  ThreadPool* pool_;
  int member_ = 0;
  void Kick() {
    pool_->Submit([this] { ++member_; });
  }
};
