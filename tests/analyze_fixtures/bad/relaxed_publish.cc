// Fixture: memory_order_relaxed on atomics whose names say they publish
// a result. Needs a written justification via the allow hatch — absent
// here, so both sites must be reported.
//
// expect-analyze: relaxed-publish
// expect-analyze: relaxed-publish

#include <atomic>

std::atomic<int> best_prover{99};

int ReadWinner() {
  return best_prover.load(std::memory_order_relaxed);
}

void Publish(int engine) {
  int seen = best_prover.load(std::memory_order_acquire);
  while (engine < seen &&
         !best_prover.compare_exchange_weak(seen, engine,
                                            std::memory_order_relaxed)) {
  }
}
