#include "util/stringutil.h"

#include <gtest/gtest.h>

namespace hypertree {
namespace {

TEST(StringUtilTest, SplitBasic) {
  EXPECT_EQ(SplitString("a,b,c", ","),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("a,,b", ","), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitString("", ","), (std::vector<std::string>{}));
  EXPECT_EQ(SplitString("a b\tc", " \t"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, Strip) {
  EXPECT_EQ(StripString("  hi  "), "hi");
  EXPECT_EQ(StripString("hi"), "hi");
  EXPECT_EQ(StripString("   "), "");
  EXPECT_EQ(StripString("\t x \n"), "x");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("hello", "hello!"));
  EXPECT_FALSE(StartsWith("hello", "x"));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"only"}, ","), "only");
}

}  // namespace
}  // namespace hypertree
