#include "csp/csp.h"

#include <gtest/gtest.h>

#include "csp/backtracking.h"
#include "csp/generators.h"
#include "graph/generators.h"
#include "hypergraph/generators.h"

namespace hypertree {
namespace {

TEST(CspTest, AustraliaIsThreeColorable) {
  Csp csp = AustraliaMapColoring();
  EXPECT_EQ(csp.NumVariables(), 7);
  EXPECT_EQ(csp.NumConstraints(), 9);
  auto solution = BacktrackingSolve(csp);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(csp.IsSolution(*solution));
}

TEST(CspTest, AustraliaNotTwoColorable) {
  Csp csp = AustraliaMapColoring();
  for (int v = 0; v < 7; ++v) csp.SetDomainSize(v, 2);
  // Domains shrank but relations still allow 3 values; rebuild instead.
  Csp two(7, 2);
  const Csp& src = AustraliaMapColoring();
  for (int c = 0; c < src.NumConstraints(); ++c) {
    const Constraint& con = src.GetConstraint(c);
    Relation r(con.scope);
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        if (a != b) r.AddTuple({a, b});
      }
    }
    two.AddConstraint(con.scope, std::move(r));
  }
  EXPECT_FALSE(BacktrackingSolve(two).has_value());
}

TEST(CspTest, ConstraintHypergraphShape) {
  Csp csp = AustraliaMapColoring();
  Hypergraph h = csp.ConstraintHypergraph();
  // TAS has no constraints: gets a unary free edge.
  EXPECT_EQ(h.NumVertices(), 7);
  EXPECT_EQ(h.NumEdges(), 10);
}

TEST(CspTest, SatExampleFromThesis) {
  // phi = (!x1 v x2 v x3) & (x1 v !x4) & (!x3 v !x5)   (Example 2)
  Csp csp = SatCsp(5, {{-1, 2, 3}, {1, -4}, {-3, -5}});
  auto solution = BacktrackingSolve(csp);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(csp.IsSolution(*solution));
  // Known satisfying assignment x1=t,x2=t,x3=f,x4=t,x5=f.
  EXPECT_TRUE(csp.IsSolution({1, 1, 0, 1, 0}));
  EXPECT_FALSE(csp.IsSolution({0, 0, 0, 1, 0}));  // clause 2 violated
}

TEST(CspTest, UnsatisfiableSat) {
  Csp csp = SatCsp(1, {{1}, {-1}});
  EXPECT_FALSE(BacktrackingSolve(csp).has_value());
  EXPECT_EQ(BacktrackingCountSolutions(csp), 0);
}

TEST(CspTest, CountSolutionsTriangleColoring) {
  // 3-coloring a triangle: 3! = 6 proper colorings.
  Csp csp = GraphColoringCsp(CompleteGraph(3), 3);
  EXPECT_EQ(BacktrackingCountSolutions(csp), 6);
}

TEST(CspTest, PlantedSolutionAlwaysSatisfiable) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Hypergraph h = RandomHypergraph(10, 12, 2, 3, seed);
    Csp csp = RandomCspFromHypergraph(h, 3, 0.3, /*plant_solution=*/true,
                                      seed + 1);
    auto solution = BacktrackingSolve(csp);
    ASSERT_TRUE(solution.has_value()) << "seed " << seed;
    EXPECT_TRUE(csp.IsSolution(*solution));
  }
}

TEST(CspTest, NodeBudgetAborts) {
  // Satisfiable instance with 36 variables: any solver must make at least
  // 36 assignments, so a 10-node budget is guaranteed to abort.
  Csp csp = GraphColoringCsp(QueensGraph(6), 7);
  BacktrackStats stats;
  auto solution = BacktrackingSolve(csp, /*max_nodes=*/10, &stats);
  EXPECT_FALSE(solution.has_value());
  EXPECT_TRUE(stats.aborted);
  EXPECT_LE(stats.nodes, 11);
}

TEST(CspTest, ConstraintHypergraphOfGeneratedCspMatches) {
  Hypergraph h = Grid2DHypergraph(3);
  Csp csp = RandomCspFromHypergraph(h, 2, 0.5, true, 3);
  Hypergraph back = csp.ConstraintHypergraph();
  EXPECT_EQ(back.NumEdges(), h.NumEdges());
  for (int e = 0; e < h.NumEdges(); ++e) {
    EXPECT_EQ(back.EdgeVertices(e), h.EdgeVertices(e));
  }
}

}  // namespace
}  // namespace hypertree
