// SharedBounds unit + concurrency tests. The hammering tests exist for
// scripts/run_tsan_checks.sh: many publishers racing on the same
// SharedBounds must stay data-race-free and converge to min(ub)/max(lb).

#include <gtest/gtest.h>

#include <climits>
#include <thread>
#include <vector>

#include "portfolio/shared_bounds.h"

namespace hypertree {
namespace {

TEST(SharedBoundsTest, SeededAndMonotone) {
  SharedBounds sb(4, /*lower_bound=*/2, /*upper_bound=*/9);
  EXPECT_EQ(sb.LowerBound(), 2);
  EXPECT_EQ(sb.IncumbentUpperBound(), 9);

  sb.PublishUpperBound(7);
  sb.PublishUpperBound(8);  // worse: ignored
  EXPECT_EQ(sb.IncumbentUpperBound(), 7);
  sb.PublishLowerBound(3);
  sb.PublishLowerBound(1);  // worse: ignored
  EXPECT_EQ(sb.LowerBound(), 3);

  // Update counters only count successful improvements.
  EXPECT_EQ(sb.ub_updates(), 1);
  EXPECT_EQ(sb.lb_updates(), 1);
}

TEST(SharedBoundsTest, ProveCancelsOnlyHigherIndices) {
  SharedBounds sb(4, 1, 9);
  EXPECT_EQ(sb.BestProver(), INT_MAX);
  EXPECT_LT(sb.FirstProveSeconds(), 0);

  sb.Prove(2, 5);
  EXPECT_EQ(sb.BestProver(), 2);
  EXPECT_EQ(sb.IncumbentUpperBound(), 5);
  EXPECT_EQ(sb.LowerBound(), 5);
  EXPECT_GE(sb.FirstProveSeconds(), 0);
  EXPECT_FALSE(sb.TokenFor(0).Cancelled());
  EXPECT_FALSE(sb.TokenFor(1).Cancelled());
  EXPECT_FALSE(sb.TokenFor(2).Cancelled());
  EXPECT_TRUE(sb.TokenFor(3).Cancelled());
  EXPECT_FALSE(sb.Superseded(2));
  EXPECT_TRUE(sb.Superseded(3));

  // A later, lower-indexed prover takes over the winner slot; the earlier
  // prover's token stays uncancelled only for indices at or below 1.
  sb.Prove(1, 5);
  EXPECT_EQ(sb.BestProver(), 1);
  EXPECT_FALSE(sb.TokenFor(0).Cancelled());
  EXPECT_FALSE(sb.TokenFor(1).Cancelled());
  EXPECT_TRUE(sb.TokenFor(2).Cancelled());
}

TEST(SharedBoundsTest, CancelAll) {
  SharedBounds sb(3);
  sb.CancelAll();
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(sb.TokenFor(i).Cancelled());
}

// Many concurrent publishers: bounds converge to the best value published
// by anyone, update counts stay within the number of actual improvements,
// and (under TSan) nothing races.
TEST(SharedBoundsTest, ConcurrentPublishersConverge) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 2000;
  SharedBounds sb(kThreads, 0, 1 << 20);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sb, t] {
      for (int r = 0; r < kRounds; ++r) {
        // Deterministic per-thread sequences that interleave arbitrarily:
        // ubs drift downward to 7, lbs upward to 7.
        sb.PublishUpperBound(7 + ((r * 31 + t * 17) % 1000));
        sb.PublishLowerBound(7 - ((r * 13 + t * 29) % 7) - 1);
        (void)sb.IncumbentUpperBound();
        (void)sb.LowerBound();
      }
      sb.PublishUpperBound(7);
      if (t == kThreads - 1) sb.PublishLowerBound(7);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(sb.IncumbentUpperBound(), 7);
  EXPECT_EQ(sb.LowerBound(), 7);
  // Every counted update must correspond to a strict improvement, and the
  // improvement chains are bounded by the value ranges involved.
  EXPECT_GE(sb.ub_updates(), 1);
  EXPECT_LE(sb.ub_updates(), (1 << 20) - 7 + 1);
  EXPECT_GE(sb.lb_updates(), 1);
  EXPECT_LE(sb.lb_updates(), 8);
}

// Concurrent provers: the lowest-indexed prover owns the verdict and only
// engines above the lowest prover end up cancelled.
TEST(SharedBoundsTest, ConcurrentProversLowestIndexWins) {
  constexpr int kEngines = 8;
  SharedBounds sb(kEngines, 0, 100);
  std::vector<std::thread> workers;
  for (int t = 2; t < kEngines; ++t) {
    workers.emplace_back([&sb, t] { sb.Prove(t, 42); });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(sb.BestProver(), 2);
  EXPECT_EQ(sb.IncumbentUpperBound(), 42);
  EXPECT_EQ(sb.LowerBound(), 42);
  EXPECT_FALSE(sb.TokenFor(0).Cancelled());
  EXPECT_FALSE(sb.TokenFor(1).Cancelled());
  EXPECT_FALSE(sb.TokenFor(2).Cancelled());
  for (int j = 3; j < kEngines; ++j) EXPECT_TRUE(sb.TokenFor(j).Cancelled());
  EXPECT_GE(sb.FirstProveSeconds(), 0);
  EXPECT_GE(sb.ElapsedSeconds(), sb.FirstProveSeconds());
}

}  // namespace
}  // namespace hypertree
