// The survey's width hierarchy, verified empirically:
//   fhw(H) <= ghw(H) <= hw(H) <= tw(H) + 1   and   ghw(H) = 1 iff
//   H is alpha-acyclic.

#include <gtest/gtest.h>

#include "fhw/fractional_hypertree.h"
#include "ghd/branch_and_bound.h"
#include "hd/det_k_decomp.h"
#include "hypergraph/acyclicity.h"
#include "hypergraph/generators.h"
#include "td/branch_and_bound.h"

namespace hypertree {
namespace {

class WidthHierarchyTest : public ::testing::TestWithParam<int> {};

TEST_P(WidthHierarchyTest, HoldsOnRandomHypergraphs) {
  uint64_t seed = GetParam();
  Hypergraph h = RandomHypergraph(9, 8, 2, 4, seed * 37 + 11);
  WidthResult ghw = BranchAndBoundGhw(h);
  WidthResult hw = HypertreeWidth(h);
  WidthResult tw = BranchAndBoundTreewidth(h.PrimalGraph());
  ASSERT_TRUE(ghw.exact && hw.exact && tw.exact) << "seed " << seed;
  EXPECT_LE(ghw.upper_bound, hw.upper_bound) << "seed " << seed;
  EXPECT_LE(hw.upper_bound, tw.upper_bound + 1) << "seed " << seed;
  double fhw_witness = FractionalWidthOfOrdering(h, ghw.best_ordering);
  EXPECT_LE(fhw_witness, ghw.upper_bound + 1e-7) << "seed " << seed;
  // Acyclicity characterization.
  EXPECT_EQ(ghw.upper_bound == 1, IsAlphaAcyclic(h)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, WidthHierarchyTest, ::testing::Range(0, 15));

TEST(WidthHierarchyTest, StructuredFamilies) {
  struct Case {
    Hypergraph h;
    int expected_ghw;
  };
  std::vector<Case> cases;
  cases.push_back({CycleHypergraph(6, 2), 2});
  cases.push_back({CliqueHypergraph(6), 3});
  cases.push_back({RandomAcyclicHypergraph(8, 3, 1), 1});
  for (auto& c : cases) {
    WidthResult ghw = BranchAndBoundGhw(c.h);
    ASSERT_TRUE(ghw.exact) << c.h.name();
    EXPECT_EQ(ghw.upper_bound, c.expected_ghw) << c.h.name();
    WidthResult hw = HypertreeWidth(c.h);
    ASSERT_TRUE(hw.exact) << c.h.name();
    EXPECT_GE(hw.upper_bound, ghw.upper_bound) << c.h.name();
  }
}

TEST(WidthHierarchyTest, BigEdgesShrinkGhwButNotTw) {
  // A clique covered by one big hyperedge: tw stays n-1, ghw drops to 1.
  int n = 7;
  Hypergraph h(n);
  std::vector<int> all;
  for (int v = 0; v < n; ++v) all.push_back(v);
  h.AddEdge(all);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) h.AddEdge({u, v});
  }
  WidthResult ghw = BranchAndBoundGhw(h);
  WidthResult tw = BranchAndBoundTreewidth(h.PrimalGraph());
  ASSERT_TRUE(ghw.exact && tw.exact);
  EXPECT_EQ(ghw.upper_bound, 1);
  EXPECT_EQ(tw.upper_bound, n - 1);
}

}  // namespace
}  // namespace hypertree
