#include "ghd/ghd.h"

#include <gtest/gtest.h>

#include "ghd/ghw_from_ordering.h"
#include "hypergraph/generators.h"
#include "ordering/heuristics.h"
#include "util/rng.h"

namespace hypertree {
namespace {

Hypergraph Example5() {
  Hypergraph h(6);
  h.AddEdge({0, 1, 2}, "C1");
  h.AddEdge({0, 4, 5}, "C2");
  h.AddEdge({2, 3, 4}, "C3");
  return h;
}

TEST(GhdTest, ManualWidthTwoDecomposition) {
  // Thesis Figure 2.7: a width-2 GHD of Example 5.
  Hypergraph h = Example5();
  TreeDecomposition td(6);
  int root = td.AddNode(Bitset::FromVector(6, {0, 2, 3, 4, 5}));
  int leaf = td.AddNode(Bitset::FromVector(6, {0, 1, 2}));
  td.AddTreeEdge(root, leaf);
  GeneralizedHypertreeDecomposition ghd(std::move(td));
  ghd.SetLambda(root, {1, 2});  // C2 + C3 cover {0,2,3,4,5}
  ghd.SetLambda(leaf, {0});     // C1
  std::string why;
  EXPECT_TRUE(ghd.IsValidFor(h, &why)) << why;
  EXPECT_EQ(ghd.Width(), 2);
}

TEST(GhdTest, DetectsUncoveredChi) {
  Hypergraph h = Example5();
  TreeDecomposition td(6);
  int a = td.AddNode(Bitset::FromVector(6, {0, 1, 2, 3, 4, 5}));
  GeneralizedHypertreeDecomposition ghd(std::move(td));
  ghd.SetLambda(a, {0});  // C1 does not cover x4, x5, x6
  std::string why;
  EXPECT_FALSE(ghd.IsValidFor(h, &why));
  EXPECT_NE(why.find("lambda"), std::string::npos);
}

TEST(GhdTest, CompletionAddsMissingEdges) {
  Hypergraph h = Example5();
  GhwEvaluator eval(h);
  Rng rng(2);
  EliminationOrdering sigma = MinFillOrdering(eval.primal(), &rng);
  GeneralizedHypertreeDecomposition ghd =
      eval.BuildGhd(sigma, CoverMode::kExact);
  ASSERT_TRUE(ghd.IsValidFor(h, nullptr));
  int width_before = ghd.Width();
  ghd.MakeComplete(h);
  EXPECT_TRUE(ghd.IsComplete(h));
  EXPECT_TRUE(ghd.IsValidFor(h, nullptr));
  // Lemma 2: completion preserves the width.
  EXPECT_EQ(ghd.Width(), width_before);
}

TEST(GhdTest, BuildGhdFromOrderingIsValid) {
  Rng rng(3);
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Hypergraph h = RandomHypergraph(14, 18, 2, 4, seed);
    GhwEvaluator eval(h);
    EliminationOrdering sigma = RandomOrdering(h.NumVertices(), &rng);
    for (CoverMode mode : {CoverMode::kGreedy, CoverMode::kExact}) {
      GeneralizedHypertreeDecomposition ghd = eval.BuildGhd(sigma, mode, &rng);
      std::string why;
      EXPECT_TRUE(ghd.IsValidFor(h, &why)) << "seed " << seed << ": " << why;
    }
    // With exact covers the built GHD's width equals width(sigma, H).
    GeneralizedHypertreeDecomposition exact_ghd =
        eval.BuildGhd(sigma, CoverMode::kExact);
    EXPECT_EQ(exact_ghd.Width(),
              eval.EvaluateOrdering(sigma, CoverMode::kExact));
  }
}

TEST(GhdTest, ExactCoverNeverWiderThanGreedy) {
  Rng rng(4);
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Hypergraph h = RandomHypergraph(16, 20, 2, 5, seed + 100);
    GhwEvaluator eval(h);
    EliminationOrdering sigma = RandomOrdering(h.NumVertices(), &rng);
    int exact = eval.EvaluateOrdering(sigma, CoverMode::kExact);
    int greedy = eval.EvaluateOrdering(sigma, CoverMode::kGreedy, &rng);
    EXPECT_LE(exact, greedy) << "seed " << seed;
  }
}

TEST(GhdTest, SimplifyGhdPreservesValidityAndWidth) {
  Rng rng(9);
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Hypergraph h = RandomHypergraph(14, 16, 2, 4, seed + 400);
    GhwEvaluator eval(h);
    GeneralizedHypertreeDecomposition ghd = eval.BuildGhd(
        MinFillOrdering(eval.primal(), &rng), CoverMode::kExact);
    GeneralizedHypertreeDecomposition simple = SimplifyGhd(h, ghd);
    std::string why;
    EXPECT_TRUE(simple.IsValidFor(h, &why)) << "seed " << seed << ": " << why;
    EXPECT_LE(simple.Width(), ghd.Width()) << "seed " << seed;
    EXPECT_LE(simple.NumNodes(), ghd.NumNodes()) << "seed " << seed;
  }
}

TEST(GhdTest, SimplifySingleEdgeHypergraphToOneNode) {
  Hypergraph h(4);
  h.AddEdge({0, 1, 2, 3});
  GhwEvaluator eval(h);
  Rng rng(10);
  GeneralizedHypertreeDecomposition ghd = eval.BuildGhd(
      MinFillOrdering(eval.primal(), &rng), CoverMode::kExact);
  GeneralizedHypertreeDecomposition simple = SimplifyGhd(h, ghd);
  EXPECT_EQ(simple.NumNodes(), 1);
  EXPECT_EQ(simple.Width(), 1);
  EXPECT_TRUE(simple.IsValidFor(h, nullptr));
}

TEST(GhdTest, AcyclicHypergraphReachesWidthOne) {
  // ghw = 1 for alpha-acyclic hypergraphs; a good ordering realizes it.
  Hypergraph h = RandomAcyclicHypergraph(12, 4, 9);
  GhwEvaluator eval(h);
  Rng rng(5);
  int best = h.NumEdges();
  for (int trial = 0; trial < 30; ++trial) {
    EliminationOrdering sigma = MinFillOrdering(eval.primal(), &rng);
    best = std::min(best, eval.EvaluateOrdering(sigma, CoverMode::kExact));
  }
  EXPECT_EQ(best, 1);
}

}  // namespace
}  // namespace hypertree
