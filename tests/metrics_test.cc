#include "util/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace hypertree::metrics {
namespace {

TEST(MetricsTest, CounterStartsAtZeroAndAccumulates) {
  Counter& c = GetCounter("test.basic");
  long before = c.Value();
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), before + 42);
}

TEST(MetricsTest, SameNameReturnsSameCounter) {
  Counter& a = GetCounter("test.identity");
  Counter& b = GetCounter("test.identity");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "test.identity");
}

TEST(MetricsTest, ReferencesSurviveLaterRegistrations) {
  Counter& a = GetCounter("test.stable_a");
  a.Add(7);
  // Registering many more counters must not move the earlier one.
  for (int i = 0; i < 100; ++i) {
    GetCounter("test.stable_filler_" + std::to_string(i));
  }
  EXPECT_EQ(&GetCounter("test.stable_a"), &a);
  EXPECT_GE(a.Value(), 7);
}

TEST(MetricsTest, ConcurrentIncrementsAreLossless) {
  Counter& c = GetCounter("test.concurrent");
  long before = c.Value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.Value(), before + static_cast<long>(kThreads) * kPerThread);
}

TEST(MetricsTest, ConcurrentRegistrationIsSafe) {
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 200; ++i) {
        GetCounter("test.race_" + std::to_string(i)).Increment();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(GetCounter("test.race_" + std::to_string(i)).Value(), kThreads);
  }
}

TEST(MetricsTest, SnapshotIsNameSortedAndSkipsZerosByDefault) {
  GetCounter("test.snap_zero");  // registered, left at (or reset to) zero
  Counter& nz = GetCounter("test.snap_nonzero");
  nz.Add(5);
  std::vector<Sample> snap = Registry::Global().Snapshot();
  bool saw_nonzero = false;
  for (size_t i = 0; i < snap.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(snap[i - 1].first, snap[i].first);
    }
    EXPECT_NE(snap[i].second, 0);
    if (snap[i].first == "test.snap_nonzero") saw_nonzero = true;
  }
  EXPECT_TRUE(saw_nonzero);

  std::vector<Sample> full = Registry::Global().Snapshot(/*include_zero=*/true);
  EXPECT_EQ(full.size(), Registry::Global().size());
  EXPECT_GE(full.size(), snap.size());
}

TEST(MetricsTest, ResetZeroesValuesButKeepsRegistrations) {
  Counter& c = GetCounter("test.reset");
  c.Add(9);
  size_t registered = Registry::Global().size();
  Registry::Global().Reset();
  EXPECT_EQ(Registry::Global().size(), registered);
  EXPECT_EQ(c.Value(), 0);
  // The reference handed out before Reset() must still be the live one.
  c.Increment();
  EXPECT_EQ(GetCounter("test.reset").Value(), 1);
}

TEST(MetricsTest, ScopedTimerRecordsWallTimeAndCalls) {
  Counter& wall = GetCounter("test.timer.wall_ns");
  Counter& calls = GetCounter("test.timer.calls");
  long wall_before = wall.Value();
  long calls_before = calls.Value();
  {
    ScopedTimer t(wall, calls);
    // Do a little work so elapsed time is very likely nonzero even on
    // coarse clocks; zero is still legal, so only calls is asserted
    // exactly.
    volatile long sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
    (void)sink;
  }
  EXPECT_EQ(calls.Value(), calls_before + 1);
  EXPECT_GE(wall.Value(), wall_before);
}

TEST(MetricsTest, ScopedTimerByNameUsesConventionalSuffixes) {
  {
    ScopedTimer t("test.named_scope");
  }
  EXPECT_EQ(GetCounter("test.named_scope.calls").Value(), 1);
  EXPECT_GE(GetCounter("test.named_scope.wall_ns").Value(), 0);
}

TEST(MetricsTest, ScopedTimersNest) {
  Counter& outer_wall = GetCounter("test.nest_outer.wall_ns");
  Counter& outer_calls = GetCounter("test.nest_outer.calls");
  Counter& inner_wall = GetCounter("test.nest_inner.wall_ns");
  Counter& inner_calls = GetCounter("test.nest_inner.calls");
  {
    ScopedTimer outer(outer_wall, outer_calls);
    for (int i = 0; i < 3; ++i) {
      ScopedTimer inner(inner_wall, inner_calls);
    }
  }
  EXPECT_EQ(outer_calls.Value(), 1);
  EXPECT_EQ(inner_calls.Value(), 3);
  // The outer scope strictly contains the inner ones.
  EXPECT_GE(outer_wall.Value(), inner_wall.Value());
}

}  // namespace
}  // namespace hypertree::metrics
