#include "hd/det_k_decomp.h"

#include <gtest/gtest.h>

#include "ghd/branch_and_bound.h"
#include "hypergraph/acyclicity.h"
#include "hypergraph/generators.h"

namespace hypertree {
namespace {

TEST(DetKDecompTest, AcyclicHasHwOne) {
  Hypergraph h = RandomAcyclicHypergraph(10, 4, 2);
  ASSERT_TRUE(IsAlphaAcyclic(h));
  auto hd = DetKDecomp(h, 1);
  ASSERT_TRUE(hd.has_value());
  std::string why;
  EXPECT_TRUE(hd->IsValidFor(h, &why)) << why;
  EXPECT_LE(hd->Width(), 1);
}

TEST(DetKDecompTest, TriangleNeedsTwo) {
  Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({0, 2});
  EXPECT_FALSE(DetKDecomp(h, 1).has_value());
  auto hd = DetKDecomp(h, 2);
  ASSERT_TRUE(hd.has_value());
  EXPECT_TRUE(hd->IsValidFor(h, nullptr));
}

TEST(DetKDecompTest, WitnessesAreValidHds) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Hypergraph h = RandomHypergraph(10, 9, 2, 4, seed * 7 + 3);
    WidthResult hw = HypertreeWidth(h);
    ASSERT_TRUE(hw.exact) << "seed " << seed;
    std::optional<HypertreeDecomposition> witness;
    SearchOptions opts;
    bool aborted = false;
    auto hd = DetKDecomp(h, hw.upper_bound, opts, &aborted);
    ASSERT_TRUE(hd.has_value()) << "seed " << seed;
    std::string why;
    EXPECT_TRUE(hd->IsValidFor(h, &why)) << "seed " << seed << ": " << why;
    EXPECT_LE(hd->Width(), hw.upper_bound);
    (void)witness;
  }
}

TEST(DetKDecompTest, HwSandwichedByGhw) {
  // ghw <= hw always; and hw <= 3*ghw + 1 (GLS); on these tiny instances
  // usually hw == ghw or ghw+1.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Hypergraph h = RandomHypergraph(9, 8, 2, 4, seed * 11 + 5);
    WidthResult ghw = BranchAndBoundGhw(h);
    WidthResult hw = HypertreeWidth(h);
    ASSERT_TRUE(ghw.exact && hw.exact) << "seed " << seed;
    EXPECT_LE(ghw.upper_bound, hw.upper_bound) << "seed " << seed;
    EXPECT_LE(hw.upper_bound, 3 * ghw.upper_bound + 1) << "seed " << seed;
  }
}

TEST(DetKDecompTest, GridHypertreeWidth) {
  // grid2d_3 (3x3 grid of binary constraints): hw = 2? At least it is
  // exactly computable and >= ghw = 2.
  Hypergraph h = Grid2DHypergraph(3);
  WidthResult hw = HypertreeWidth(h);
  ASSERT_TRUE(hw.exact);
  WidthResult ghw = BranchAndBoundGhw(h);
  ASSERT_TRUE(ghw.exact);
  EXPECT_GE(hw.upper_bound, ghw.upper_bound);
  EXPECT_LE(hw.upper_bound, ghw.upper_bound + 1);
}

TEST(DetKDecompTest, BudgetExhaustionReported) {
  Hypergraph h = Grid2DHypergraph(4);
  SearchOptions opts;
  opts.max_nodes = 5;
  bool aborted = false;
  auto hd = DetKDecomp(h, 2, opts, &aborted);
  if (!hd.has_value()) {
    EXPECT_TRUE(aborted);  // 5 ticks cannot decide this instance
  }
}

TEST(DetKDecompTest, SingleEdge) {
  Hypergraph h(4);
  h.AddEdge({0, 1, 2, 3});
  auto hd = DetKDecomp(h, 1);
  ASSERT_TRUE(hd.has_value());
  EXPECT_TRUE(hd->IsValidFor(h, nullptr));
  EXPECT_EQ(hd->Width(), 1);
}

}  // namespace
}  // namespace hypertree
