#include "csp/adaptive_consistency.h"

#include <gtest/gtest.h>

#include "csp/backtracking.h"
#include "csp/generators.h"
#include "graph/generators.h"
#include "hypergraph/generators.h"
#include "util/rng.h"

namespace hypertree {
namespace {

TEST(AdaptiveConsistencyTest, SolvesAustralia) {
  Csp csp = AustraliaMapColoring();
  auto solution = AdaptiveConsistencySolve(csp);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(csp.IsSolution(*solution));
}

TEST(AdaptiveConsistencyTest, DetectsUnsat) {
  Csp csp = SatCsp(2, {{1}, {-1}, {2}});
  EXPECT_FALSE(AdaptiveConsistencySolve(csp).has_value());
  Csp coloring = GraphColoringCsp(CompleteGraph(4), 3);
  EXPECT_FALSE(AdaptiveConsistencySolve(coloring).has_value());
}

class AdaptiveAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(AdaptiveAgreementTest, MatchesBacktracking) {
  uint64_t seed = GetParam();
  Hypergraph h = RandomHypergraph(10, 11, 2, 3, seed * 7 + 5);
  for (double tightness : {0.2, 0.5}) {
    Csp csp = RandomCspFromHypergraph(h, 2, tightness, false, seed);
    bool expected = BacktrackingSolve(csp).has_value();
    auto solution = AdaptiveConsistencySolve(csp);
    EXPECT_EQ(solution.has_value(), expected)
        << "seed " << seed << " t " << tightness;
    if (solution.has_value()) {
      EXPECT_TRUE(csp.IsSolution(*solution));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdaptiveAgreementTest, ::testing::Range(0, 15));

TEST(AdaptiveConsistencyTest, ExplicitOrderingAndStats) {
  Csp csp = GraphColoringCsp(CycleGraph(8), 3);
  Rng rng(2);
  AdaptiveConsistencyStats stats;
  auto solution =
      AdaptiveConsistencySolve(csp, rng.Permutation(8), &stats);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(csp.IsSolution(*solution));
  EXPECT_GT(stats.tuples_materialized, 0);
  EXPECT_GT(stats.max_relation, 0);
}

TEST(AdaptiveConsistencyTest, FreeVariablesGetValues) {
  Csp csp(4, 3);
  Relation r({0, 1});
  r.AddTuple({1, 2});
  csp.AddConstraint({0, 1}, std::move(r));
  // Variables 2 and 3 are unconstrained.
  auto solution = AdaptiveConsistencySolve(csp);
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ((*solution)[0], 1);
  EXPECT_EQ((*solution)[1], 2);
}

TEST(AdaptiveConsistencyTest, PlantedAlwaysSolved) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Hypergraph h = Grid2DHypergraph(4);
    Csp csp = RandomCspFromHypergraph(h, 2, 0.3, true, seed);
    auto solution = AdaptiveConsistencySolve(csp);
    ASSERT_TRUE(solution.has_value()) << "seed " << seed;
    EXPECT_TRUE(csp.IsSolution(*solution));
  }
}

}  // namespace
}  // namespace hypertree
