// Determinism tests for the parallel Yannakakis paths: every solve /
// count / query-answering entry point must produce bit-identical results
// (assignments, counts, answer tuples in order) and identical relation
// kernel counter deltas with a thread pool as without one.

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cq/answer.h"
#include "cq/database.h"
#include "cq/query.h"
#include "csp/counting.h"
#include "csp/decomposition_solving.h"
#include "csp/generators.h"
#include "csp/yannakakis.h"
#include "ghd/ghw_from_ordering.h"
#include "hypergraph/generators.h"
#include "ordering/heuristics.h"
#include "td/tree_decomposition.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hypertree {
namespace {

struct Decomps {
  TreeDecomposition td;
  GeneralizedHypertreeDecomposition ghd;
};

Decomps Decompose(const Csp& csp, uint64_t seed) {
  Hypergraph h = csp.ConstraintHypergraph();
  GhwEvaluator eval(h);
  Rng rng(seed);
  EliminationOrdering sigma = MinFillOrdering(eval.primal(), &rng);
  return {TreeDecompositionFromOrdering(eval.primal(), sigma),
          eval.BuildGhd(sigma, CoverMode::kExact)};
}

// Snapshot of the relation kernel counters the PR instruments. The
// parallel passes promise these are schedule-independent, so the deltas
// of a sequential and a parallel run must match exactly.
std::map<std::string, long> KernelCounters() {
  return {
      {"rows_joined", metrics::GetCounter("relation.rows_joined").Value()},
      {"rows_semijoin_dropped",
       metrics::GetCounter("relation.rows_semijoin_dropped").Value()},
      {"probe_collisions",
       metrics::GetCounter("relation.probe_collisions").Value()},
  };
}

std::map<std::string, long> Delta(const std::map<std::string, long>& before,
                                  const std::map<std::string, long>& after) {
  std::map<std::string, long> d;
  for (const auto& [k, v] : after) d[k] = v - before.at(k);
  return d;
}

class ParallelYannakakisTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelYannakakisTest, SolveAndCountMatchSequential) {
  uint64_t seed = GetParam();
  ThreadPool pool(4);
  Hypergraph h = RandomHypergraph(9, 10, 2, 3, seed * 17 + 3);
  for (double tightness : {0.25, 0.55}) {
    Csp csp = RandomCspFromHypergraph(h, 2, tightness, false, seed * 5 + 1);
    Decomps d = Decompose(csp, seed);

    auto seq_before = KernelCounters();
    auto td_seq = SolveViaTreeDecomposition(csp, d.td);
    auto td_delta_seq = Delta(seq_before, KernelCounters());

    auto par_before = KernelCounters();
    auto td_par = SolveViaTreeDecomposition(csp, d.td, nullptr, &pool);
    auto td_delta_par = Delta(par_before, KernelCounters());

    ASSERT_EQ(td_seq.has_value(), td_par.has_value())
        << "seed " << seed << " t " << tightness;
    if (td_seq.has_value()) {
      EXPECT_EQ(*td_seq, *td_par) << "seed " << seed << " t " << tightness;
    }
    EXPECT_EQ(td_delta_seq, td_delta_par)
        << "kernel counters diverged, seed " << seed << " t " << tightness;

    auto ghd_seq = SolveViaGhd(csp, d.ghd);
    auto ghd_par = SolveViaGhd(csp, d.ghd, nullptr, &pool);
    ASSERT_EQ(ghd_seq.has_value(), ghd_par.has_value()) << "seed " << seed;
    if (ghd_seq.has_value()) {
      EXPECT_EQ(*ghd_seq, *ghd_par) << "seed " << seed;
    }

    EXPECT_EQ(CountViaTreeDecomposition(csp, d.td),
              CountViaTreeDecomposition(csp, d.td, &pool))
        << "seed " << seed;
    EXPECT_EQ(CountViaGhd(csp, d.ghd), CountViaGhd(csp, d.ghd, &pool))
        << "seed " << seed;
  }
}

TEST_P(ParallelYannakakisTest, AcyclicSolveMatchesSequential) {
  uint64_t seed = GetParam();
  ThreadPool pool(4);
  Hypergraph h = RandomAcyclicHypergraph(8, 3, seed + 1);
  for (double tightness : {0.4, 0.7}) {
    Csp csp = RandomCspFromHypergraph(h, 2, tightness, false, seed + 21);
    auto seq = SolveAcyclicCsp(csp);
    auto par = SolveAcyclicCsp(csp, &pool);
    ASSERT_EQ(seq.has_value(), par.has_value()) << "seed " << seed;
    if (seq.has_value()) {
      EXPECT_EQ(*seq, *par) << "seed " << seed;
    }
    EXPECT_EQ(CountAcyclicCsp(csp), CountAcyclicCsp(csp, &pool));
  }
}

TEST_P(ParallelYannakakisTest, AnswerQueryBitIdenticalTupleOrder) {
  uint64_t seed = GetParam();
  ThreadPool pool(4);
  Rng rng(seed * 31 + 7);
  Database db;
  for (const char* name : {"a", "b", "c"}) {
    std::vector<std::vector<int>> rows;
    int count = 6 + rng.UniformInt(12);
    for (int i = 0; i < count; ++i) {
      rows.push_back({rng.UniformInt(5), rng.UniformInt(5)});
    }
    db.AddRows(name, std::move(rows));
  }
  const char* queries[] = {
      "ans(X, W) :- a(X, Y), b(Y, Z), c(Z, W).",
      "ans(X, Y, Z) :- a(X, Y), b(Y, Z), c(Z, X).",  // cyclic
      "ans() :- a(X, Y), b(Y, X).",                  // Boolean
  };
  for (const char* text : queries) {
    auto q = ParseConjunctiveQuery(text);
    ASSERT_TRUE(q.has_value()) << text;
    AnswerStats seq_stats, par_stats;
    auto seq = AnswerQuery(*q, db, nullptr, &seq_stats);
    auto par = AnswerQuery(*q, db, nullptr, &par_stats, &pool);
    ASSERT_TRUE(seq.has_value() && par.has_value()) << text;
    // Bit-identical: schema, tuples AND tuple order.
    EXPECT_EQ(seq->schema(), par->schema()) << text;
    EXPECT_EQ(seq->ToTuples(), par->ToTuples()) << text << " seed " << seed;
    EXPECT_EQ(seq_stats.intermediate_tuples, par_stats.intermediate_tuples)
        << text << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelYannakakisTest,
                         ::testing::Range(0, 8));

TEST(ParallelYannakakisTest, UnsatIsDetectedWithPool) {
  ThreadPool pool(4);
  Csp csp = SatCsp(2, {{1}, {-1}});
  Decomps d = Decompose(csp, 5);
  EXPECT_FALSE(SolveViaTreeDecomposition(csp, d.td, nullptr, &pool).has_value());
  EXPECT_FALSE(SolveViaGhd(csp, d.ghd, nullptr, &pool).has_value());
  EXPECT_EQ(CountViaTreeDecomposition(csp, d.td, &pool), 0);
}

TEST(ParallelYannakakisTest, ManyThreadsOnTinyTree) {
  // More threads than nodes: the scheduler must not deadlock or misorder.
  ThreadPool pool(8);
  Csp csp = AustraliaMapColoring();
  Decomps d = Decompose(csp, 2);
  auto solution = SolveViaTreeDecomposition(csp, d.td, nullptr, &pool);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(csp.IsSolution(*solution));
}

}  // namespace
}  // namespace hypertree
