#include "csp/relation.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace hypertree {
namespace {

Relation Make(std::vector<int> schema,
              std::vector<std::vector<int>> tuples) {
  Relation r(std::move(schema));
  for (auto& t : tuples) r.AddTuple(std::move(t));
  return r;
}

TEST(RelationTest, JoinOnSharedVariable) {
  Relation r = Make({0, 1}, {{1, 2}, {1, 3}, {2, 2}});
  Relation s = Make({1, 2}, {{2, 7}, {3, 8}, {9, 9}});
  Relation j = r.Join(s);
  EXPECT_EQ(j.schema(), (std::vector<int>{0, 1, 2}));
  // (1,2)x(2,7), (2,2)x(2,7), (1,3)x(3,8).
  EXPECT_EQ(j.Size(), 3);
  EXPECT_TRUE(j.Contains({1, 2, 7}));
  EXPECT_TRUE(j.Contains({2, 2, 7}));
  EXPECT_TRUE(j.Contains({1, 3, 8}));
}

TEST(RelationTest, JoinNoSharedIsCrossProduct) {
  Relation r = Make({0}, {{1}, {2}});
  Relation s = Make({1}, {{5}, {6}});
  Relation j = r.Join(s);
  EXPECT_EQ(j.Size(), 4);
}

TEST(RelationTest, JoinWithEmptyIsEmpty) {
  Relation r = Make({0, 1}, {{1, 2}});
  Relation s(std::vector<int>{1, 2});
  EXPECT_TRUE(r.Join(s).Empty());
}

TEST(RelationTest, SemijoinFilters) {
  Relation r = Make({0, 1}, {{1, 2}, {1, 3}, {2, 2}});
  Relation s = Make({1, 2}, {{2, 7}});
  Relation sj = r.Semijoin(s);
  EXPECT_EQ(sj.Size(), 2);  // tuples with value 2 in column 1
  EXPECT_TRUE(sj.Contains({1, 2}));
  EXPECT_TRUE(sj.Contains({2, 2}));
}

TEST(RelationTest, SemijoinNoSharedVars) {
  Relation r = Make({0}, {{1}, {2}});
  Relation nonempty = Make({5}, {{0}});
  Relation empty(std::vector<int>{5});
  EXPECT_EQ(r.Semijoin(nonempty).Size(), 2);
  EXPECT_TRUE(r.Semijoin(empty).Empty());
}

TEST(RelationTest, ProjectDeduplicates) {
  Relation r = Make({0, 1}, {{1, 2}, {1, 3}, {2, 2}});
  Relation p = r.Project({0});
  EXPECT_EQ(p.Size(), 2);
  EXPECT_TRUE(p.Contains({1}));
  EXPECT_TRUE(p.Contains({2}));
}

TEST(RelationTest, ProjectReorders) {
  Relation r = Make({3, 7}, {{1, 2}});
  Relation p = r.Project({7, 3});
  EXPECT_EQ(p.schema(), (std::vector<int>{7, 3}));
  EXPECT_TRUE(p.Contains({2, 1}));
}

TEST(RelationTest, JoinIsCommutativeUpToTupleSet) {
  Relation r = Make({0, 1}, {{1, 2}, {2, 3}});
  Relation s = Make({1, 2}, {{2, 5}, {3, 6}});
  Relation rs = r.Join(s);
  Relation sr = s.Join(r);
  EXPECT_EQ(rs.Size(), sr.Size());
  // Same tuples after projecting to a common schema order.
  Relation srp = sr.Project({0, 1, 2});
  for (const auto& t : rs.ToTuples()) EXPECT_TRUE(srp.Contains(t));
}

TEST(RelationTest, EmptySchemaIdentity) {
  Relation id(std::vector<int>{});
  id.AddTuple({});
  Relation r = Make({0}, {{1}, {2}});
  EXPECT_EQ(r.Semijoin(id).Size(), 2);
  EXPECT_EQ(r.Join(id).Size(), 2);
}

}  // namespace
}  // namespace hypertree
