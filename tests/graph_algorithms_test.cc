#include "graph/algorithms.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace hypertree {
namespace {

TEST(AlgorithmsTest, ConnectedComponents) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  int k = 0;
  std::vector<int> comp = ConnectedComponents(g, &k);
  EXPECT_EQ(k, 3);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[0], comp[5]);
  EXPECT_NE(comp[3], comp[5]);
}

TEST(AlgorithmsTest, IsConnected) {
  EXPECT_TRUE(IsConnected(CycleGraph(5)));
  EXPECT_TRUE(IsConnected(Graph(0)));
  Graph g(3);
  g.AddEdge(0, 1);
  EXPECT_FALSE(IsConnected(g));
}

TEST(AlgorithmsTest, DegeneracyOfKnownGraphs) {
  EXPECT_EQ(Degeneracy(PathGraph(10)), 1);
  EXPECT_EQ(Degeneracy(CycleGraph(10)), 2);
  EXPECT_EQ(Degeneracy(CompleteGraph(6)), 5);
  EXPECT_EQ(Degeneracy(GridGraph(4, 4)), 2);
}

TEST(AlgorithmsTest, DegeneracyOrderHasFullLength) {
  std::vector<int> order;
  Degeneracy(GridGraph(3, 3), &order);
  EXPECT_EQ(order.size(), 9u);
}

TEST(AlgorithmsTest, GreedyCliqueOnCompleteGraph) {
  EXPECT_EQ(GreedyCliqueSize(CompleteGraph(7)), 7);
}

TEST(AlgorithmsTest, GreedyCliqueBoundsOnTriangleFree) {
  // Mycielski graphs are triangle-free: max clique is 2.
  EXPECT_EQ(GreedyCliqueSize(MycielskiGraph(4)), 2);
  EXPECT_EQ(GreedyCliqueSize(CycleGraph(7)), 2);
}

}  // namespace
}  // namespace hypertree
