#include "util/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace hypertree {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitCoversNestedSubmits) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&pool, &count] {
      count.fetch_add(1, std::memory_order_relaxed);
      // Tasks submitted from inside a task must also be awaited.
      pool.Submit(
          [&count] { count.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareConcurrency) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
  ThreadPool pool(0);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(CancellationTokenTest, SharedAcrossCopies) {
  CancellationToken token;
  EXPECT_FALSE(token.Cancelled());
  CancellationToken copy = token;
  token.Cancel();
  EXPECT_TRUE(token.Cancelled());
  EXPECT_TRUE(copy.Cancelled());
}

TEST(CancellationTokenTest, WorkersObserveCancellation) {
  ThreadPool pool(4);
  CancellationToken token;
  std::atomic<int> started{0};
  std::atomic<int> bailed{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&token, &started, &bailed] {
      started.fetch_add(1, std::memory_order_relaxed);
      if (token.Cancelled()) bailed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  token.Cancel();
  pool.Wait();
  EXPECT_EQ(started.load(), 20);  // tasks still run; they observe the flag
  EXPECT_GE(bailed.load(), 0);
}

}  // namespace
}  // namespace hypertree
