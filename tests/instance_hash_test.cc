#include "serve/instance_hash.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hypergraph/generators.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/parser.h"
#include "util/rng.h"

namespace hypertree {
namespace {

using serve::HashText128;
using serve::KeyToBits;
using serve::NormalizeInstance;
using serve::NormalizedInstance;

std::string DataPath(const std::string& name) {
  return std::string(HYPERTREE_SOURCE_DIR) + "/data/" + name;
}

/// Rebuilds `h` with permuted vertex ids, permuted edge order, and fresh
/// names: the same structure in a different presentation.
Hypergraph RenamedCopy(const Hypergraph& h, uint64_t seed) {
  Rng rng(seed);
  const int n = h.NumVertices();
  std::vector<int> perm(n);
  for (int v = 0; v < n; ++v) perm[v] = v;
  for (int i = n - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.UniformInt(i + 1)]);
  }
  std::vector<int> edge_order(h.NumEdges());
  for (int e = 0; e < h.NumEdges(); ++e) edge_order[e] = e;
  for (int i = h.NumEdges() - 1; i > 0; --i) {
    std::swap(edge_order[i], edge_order[rng.UniformInt(i + 1)]);
  }
  Hypergraph out(n);
  for (int v = 0; v < n; ++v) {
    out.SetVertexName(v, "renamed_" + std::to_string(v));
  }
  for (int e : edge_order) {
    std::vector<int> members;
    for (int v : h.EdgeVertices(e)) members.push_back(perm[v]);
    // EdgeVertices is sorted in old ids; shuffle so the member order
    // carries no information either.
    for (int i = static_cast<int>(members.size()) - 1; i > 0; --i) {
      std::swap(members[i], members[static_cast<size_t>(rng.UniformInt(i + 1))]);
    }
    out.AddEdge(members, "atom_" + std::to_string(e));
  }
  return out;
}

TEST(InstanceHashTest, RenameInvariance) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Hypergraph h = RandomHypergraph(20, 24, 2, 4, seed);
    NormalizedInstance base = NormalizeInstance(h);
    for (uint64_t rename_seed = 100; rename_seed < 103; ++rename_seed) {
      NormalizedInstance renamed =
          NormalizeInstance(RenamedCopy(h, seed * 1000 + rename_seed));
      EXPECT_EQ(renamed.canonical_text, base.canonical_text)
          << "seed " << seed << " rename " << rename_seed;
      EXPECT_EQ(renamed.key, base.key);
    }
  }
}

TEST(InstanceHashTest, DistinctStructuresGetDistinctKeys) {
  // Pairwise-distinct keys across random instances and all bundled .hg
  // benchmark files.
  std::set<std::string> keys;
  int count = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Hypergraph h = RandomHypergraph(15, 18, 2, 4, seed);
    keys.insert(NormalizeInstance(h).key);
    ++count;
  }
  for (const char* name :
       {"acyclic_18.hg", "adder_8.hg", "bridge_8.hg", "circuit_40.hg",
        "clique_8.hg", "cycle_10_3.hg", "grid2d_4.hg", "grid3d_3.hg",
        "random_25_30.hg"}) {
    auto h = ReadHypergraphFile(DataPath(name));
    ASSERT_TRUE(h.has_value()) << name;
    keys.insert(NormalizeInstance(*h).key);
    ++count;
  }
  EXPECT_EQ(static_cast<int>(keys.size()), count);
}

TEST(InstanceHashTest, CanonicalTextParsesBackToSameKey) {
  // The canonical text is itself valid HyperBench input and a fixed
  // point of normalization.
  Hypergraph h = RandomHypergraph(18, 20, 2, 4, 7);
  NormalizedInstance norm = NormalizeInstance(h);
  std::string error;
  auto reparsed = ReadHypergraphFromString(norm.canonical_text, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(NormalizeInstance(*reparsed).key, norm.key);
}

TEST(InstanceHashTest, HashStableAcrossRunsAndPlatforms) {
  // Golden values: pure integer arithmetic, so these must never change
  // (a silent change would orphan every persisted cache entry).
  EXPECT_EQ(HashText128(""), "5b21f68ffa77f14c2e804a18d342bf3f");
  EXPECT_EQ(HashText128("e1(v1,v2)."), "36eaa930cb4dd18c26f7d174c2863b03");
  Hypergraph triangle(3);
  triangle.AddEdge({0, 1});
  triangle.AddEdge({1, 2});
  triangle.AddEdge({0, 2});
  EXPECT_EQ(NormalizeInstance(triangle).key,
            "f10e584c12b0ecb4c8504ff369813fe9");
}

TEST(InstanceHashTest, KeyToBitsRoundTrip) {
  const std::string key = HashText128("some instance");
  Bitset bits = KeyToBits(key);
  EXPECT_EQ(bits.size(), 128);
  // Distinct keys give distinct bitsets; equal keys equal bitsets.
  EXPECT_EQ(bits, KeyToBits(key));
  EXPECT_FALSE(bits == KeyToBits(HashText128("another instance")));
  // Spot-check nibble placement: key "0...01" sets exactly bit 64 (low
  // bit of the second 64-bit half).
  std::string low_one(32, '0');
  low_one[31] = '1';
  Bitset spot = KeyToBits(low_one);
  EXPECT_EQ(spot.Count(), 1);
  EXPECT_TRUE(spot.Test(64));
}

TEST(InstanceHashTest, NormalizedHypergraphMatchesOriginalStructure) {
  Hypergraph h = RandomHypergraph(16, 18, 2, 4, 11);
  NormalizedInstance norm = NormalizeInstance(h);
  EXPECT_EQ(norm.hypergraph.NumVertices(), h.NumVertices());
  EXPECT_EQ(norm.hypergraph.NumEdges(), h.NumEdges());
  EXPECT_EQ(norm.hypergraph.name(), norm.key);
  // Edge size multiset is preserved.
  std::multiset<int> before, after;
  for (int e = 0; e < h.NumEdges(); ++e) before.insert(h.EdgeSize(e));
  for (int e = 0; e < norm.hypergraph.NumEdges(); ++e) {
    after.insert(norm.hypergraph.EdgeSize(e));
  }
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace hypertree
