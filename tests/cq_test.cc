#include <algorithm>

#include <gtest/gtest.h>

#include "cq/answer.h"
#include "cq/database.h"
#include "cq/query.h"
#include "hypergraph/acyclicity.h"
#include "util/rng.h"

namespace hypertree {
namespace {

Database SmallDb() {
  Database db;
  db.AddRows("r", {{1, 2}, {1, 3}, {2, 3}, {4, 4}});
  db.AddRows("s", {{2, 5}, {3, 5}, {3, 6}, {4, 4}});
  db.AddRows("t", {{5}, {6}});
  return db;
}

std::vector<std::vector<int>> SortedTuples(const Relation& r) {
  auto tuples = r.ToTuples();
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

TEST(CqParserTest, ParsesChainQuery) {
  auto q = ParseConjunctiveQuery("ans(X, Z) :- r(X, Y), s(Y, Z).");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->head, (std::vector<std::string>{"X", "Z"}));
  ASSERT_EQ(q->atoms.size(), 2u);
  EXPECT_EQ(q->atoms[0].relation, "r");
  EXPECT_EQ(q->atoms[1].vars, (std::vector<std::string>{"Y", "Z"}));
  EXPECT_EQ(q->Variables(), (std::vector<std::string>{"X", "Z", "Y"}));
}

TEST(CqParserTest, ErrorsAreReported) {
  std::string error;
  EXPECT_FALSE(ParseConjunctiveQuery("ans(X) - r(X).", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseConjunctiveQuery("ans(W) :- r(X, Y).", &error).has_value());
  EXPECT_NE(error.find("W"), std::string::npos);  // unbound head var
}

TEST(CqParserTest, QueryHypergraphStructure) {
  auto q = ParseConjunctiveQuery("ans(X) :- r(X, Y), s(Y, Z), t(Z, X).");
  ASSERT_TRUE(q.has_value());
  Hypergraph h = q->QueryHypergraph();
  EXPECT_EQ(h.NumVertices(), 3);
  EXPECT_EQ(h.NumEdges(), 3);
  EXPECT_FALSE(IsAlphaAcyclic(h));  // triangle
}

TEST(CqAnswerTest, ChainQueryMatchesBruteForce) {
  auto q = ParseConjunctiveQuery("ans(X, Z) :- r(X, Y), s(Y, Z).");
  ASSERT_TRUE(q.has_value());
  Database db = SmallDb();
  auto fast = AnswerQuery(*q, db);
  auto slow = BruteForceAnswer(*q, db);
  ASSERT_TRUE(fast.has_value() && slow.has_value());
  EXPECT_EQ(SortedTuples(*fast), SortedTuples(*slow));
  // Distinct (X,Z): (1,5), (1,6), (2,5), (2,6), (4,4).
  EXPECT_EQ(fast->Size(), 5);
}

TEST(CqAnswerTest, BooleanQuery) {
  Database db = SmallDb();
  auto yes = ParseConjunctiveQuery("ans() :- r(X, Y), s(Y, Z), t(Z).");
  ASSERT_TRUE(yes.has_value());
  auto result = AnswerQuery(*yes, db);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->Size(), 1);  // true
  auto no = ParseConjunctiveQuery("ans() :- t(Z), r(Z, W).");
  ASSERT_TRUE(no.has_value());
  auto result2 = AnswerQuery(*no, db);
  ASSERT_TRUE(result2.has_value());
  EXPECT_EQ(result2->Size(), 0);  // false: t holds 5,6; r has no such X
}

TEST(CqAnswerTest, RepeatedVariablesInAtom) {
  auto q = ParseConjunctiveQuery("ans(X) :- r(X, X).");
  ASSERT_TRUE(q.has_value());
  auto result = AnswerQuery(*q, SmallDb());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(SortedTuples(*result),
            (std::vector<std::vector<int>>{{4}}));  // only r(4,4)
}

TEST(CqAnswerTest, MissingTableReported) {
  auto q = ParseConjunctiveQuery("ans(X) :- nope(X).");
  ASSERT_TRUE(q.has_value());
  std::string error;
  EXPECT_FALSE(AnswerQuery(*q, SmallDb(), &error).has_value());
  EXPECT_NE(error.find("nope"), std::string::npos);
}

TEST(CqAnswerTest, ArityMismatchReported) {
  auto q = ParseConjunctiveQuery("ans(X) :- t(X, Y).");
  ASSERT_TRUE(q.has_value());
  std::string error;
  EXPECT_FALSE(AnswerQuery(*q, SmallDb(), &error).has_value());
  EXPECT_NE(error.find("arity"), std::string::npos);
}

TEST(CqAnswerTest, CyclicQueryMatchesBruteForce) {
  auto q = ParseConjunctiveQuery(
      "ans(X, Y, Z) :- r(X, Y), r(Y, Z), r(X, Z).");
  ASSERT_TRUE(q.has_value());
  Database db = SmallDb();
  auto fast = AnswerQuery(*q, db);
  auto slow = BruteForceAnswer(*q, db);
  ASSERT_TRUE(fast.has_value() && slow.has_value());
  EXPECT_EQ(SortedTuples(*fast), SortedTuples(*slow));
  EXPECT_TRUE(fast->Contains({1, 2, 3}));
}

class CqRandomAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(CqRandomAgreementTest, RandomQueriesMatchBruteForce) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  // Random database with three binary tables over a small domain.
  Database db;
  for (const char* name : {"a", "b", "c"}) {
    std::vector<std::vector<int>> rows;
    int count = 4 + rng.UniformInt(10);
    for (int i = 0; i < count; ++i) {
      rows.push_back({rng.UniformInt(5), rng.UniformInt(5)});
    }
    db.AddRows(name, std::move(rows));
  }
  // Random chain-with-a-twist query.
  const char* queries[] = {
      "ans(X, W) :- a(X, Y), b(Y, Z), c(Z, W).",
      "ans(X) :- a(X, Y), b(Y, X).",
      "ans(Y, Z) :- a(X, Y), a(X, Z).",
      "ans() :- a(X, Y), b(Y, Z), c(Z, X).",
  };
  for (const char* text : queries) {
    auto q = ParseConjunctiveQuery(text);
    ASSERT_TRUE(q.has_value()) << text;
    auto fast = AnswerQuery(*q, db);
    auto slow = BruteForceAnswer(*q, db);
    ASSERT_TRUE(fast.has_value() && slow.has_value()) << text;
    EXPECT_EQ(SortedTuples(*fast), SortedTuples(*slow))
        << text << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqRandomAgreementTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace hypertree
