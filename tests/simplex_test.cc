#include "setcover/simplex.h"

#include <gtest/gtest.h>

#include "setcover/exact.h"
#include "setcover/fractional.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace hypertree {
namespace {

TEST(SimplexTest, SimpleTwoVariable) {
  // min x + y  s.t.  x + 2y >= 4,  3x + y >= 6  ->  optimum at the
  // intersection (8/5, 6/5): objective 14/5.
  LpResult r = SolveCoverLp({{1, 2}, {3, 1}}, {4, 6}, {1, 1});
  ASSERT_EQ(r.status, LpResult::Status::kOptimal);
  EXPECT_NEAR(r.objective, 14.0 / 5.0, 1e-7);
  EXPECT_NEAR(r.x[0], 8.0 / 5.0, 1e-7);
  EXPECT_NEAR(r.x[1], 6.0 / 5.0, 1e-7);
}

TEST(SimplexTest, NoConstraintsIsZero) {
  LpResult r = SolveCoverLp({}, {}, {1, 1, 1});
  ASSERT_EQ(r.status, LpResult::Status::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-9);
}

TEST(SimplexTest, InfeasibleDetected) {
  // 0*x >= 1 is infeasible.
  LpResult r = SolveCoverLp({{0.0}}, {1.0}, {1.0});
  EXPECT_EQ(r.status, LpResult::Status::kInfeasible);
}

TEST(SimplexTest, RedundantConstraints) {
  LpResult r = SolveCoverLp({{1.0}, {1.0}}, {2.0, 1.0}, {1.0});
  ASSERT_EQ(r.status, LpResult::Status::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-7);
}

TEST(FractionalCoverTest, TriangleIsThreeHalves) {
  // Classic: fractional cover of a triangle with its three edges is 1.5.
  std::vector<Bitset> edges = {Bitset::FromVector(3, {0, 1}),
                               Bitset::FromVector(3, {1, 2}),
                               Bitset::FromVector(3, {0, 2})};
  Bitset target(3);
  target.SetAll();
  std::vector<double> w;
  double rho = FractionalSetCover(edges, target, &w);
  EXPECT_NEAR(rho, 1.5, 1e-7);
  for (double wi : w) EXPECT_NEAR(wi, 0.5, 1e-7);
}

TEST(FractionalCoverTest, IntegralWhenOneSetCovers) {
  std::vector<Bitset> sets = {Bitset::FromVector(4, {0, 1, 2, 3}),
                              Bitset::FromVector(4, {0, 1})};
  Bitset target(4);
  target.SetAll();
  EXPECT_NEAR(FractionalSetCover(sets, target), 1.0, 1e-7);
}

TEST(FractionalCoverTest, EmptyTargetIsZero) {
  std::vector<Bitset> sets = {Bitset::FromVector(3, {0})};
  EXPECT_NEAR(FractionalSetCover(sets, Bitset(3)), 0.0, 1e-12);
}

TEST(FractionalCoverTest, NeverExceedsIntegralOptimum) {
  Rng rng(23);
  for (int trial = 0; trial < 25; ++trial) {
    int universe = 3 + rng.UniformInt(8);
    int num_sets = 2 + rng.UniformInt(6);
    std::vector<Bitset> sets;
    Bitset unionall(universe);
    for (int s = 0; s < num_sets; ++s) {
      Bitset b(universe);
      int size = 1 + rng.UniformInt(universe);
      for (int i = 0; i < size; ++i) b.Set(rng.UniformInt(universe));
      sets.push_back(b);
      unionall |= b;
    }
    double frac = FractionalSetCover(sets, unionall);
    int integral = ExactSetCover(sets, unionall);
    EXPECT_LE(frac, integral + 1e-7) << "trial " << trial;
    EXPECT_GE(frac, 1.0 - 1e-7);
  }
}

}  // namespace
}  // namespace hypertree
