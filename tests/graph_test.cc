#include "graph/graph.h"

#include <gtest/gtest.h>

namespace hypertree {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g(5);
  EXPECT_EQ(g.NumVertices(), 5);
  EXPECT_EQ(g.NumEdges(), 0);
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.Degree(0), 0);
}

TEST(GraphTest, AddEdgeSymmetric) {
  Graph g(4);
  g.AddEdge(0, 1);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(1), 1);
}

TEST(GraphTest, DuplicatesAndLoopsIgnored) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(0, 0);
  EXPECT_EQ(g.NumEdges(), 1);
}

TEST(GraphTest, EdgesEnumeratedOnce) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 1);
  g.AddEdge(3, 0);
  auto edges = g.Edges();
  EXPECT_EQ(edges.size(), 3u);
  for (auto [u, v] : edges) EXPECT_LT(u, v);
}

TEST(GraphTest, NeighborsSorted) {
  Graph g(5);
  g.AddEdge(2, 4);
  g.AddEdge(2, 0);
  g.AddEdge(2, 3);
  EXPECT_EQ(g.Neighbors(2), (std::vector<int>{0, 3, 4}));
}

TEST(GraphTest, IsClique) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  EXPECT_TRUE(g.IsClique(Bitset::FromVector(5, {0, 1, 2})));
  EXPECT_TRUE(g.IsClique(Bitset::FromVector(5, {0, 1})));
  EXPECT_TRUE(g.IsClique(Bitset::FromVector(5, {3})));
  EXPECT_FALSE(g.IsClique(Bitset::FromVector(5, {0, 1, 3})));
}

}  // namespace
}  // namespace hypertree
