#include "ordering/evaluator.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "ordering/bucket_elimination.h"
#include "util/rng.h"

namespace hypertree {
namespace {

TEST(EvaluatorTest, MatchesBucketEliminationOnKnownGraphs) {
  Rng rng(1);
  for (const Graph& g :
       {PathGraph(8), CycleGraph(8), GridGraph(4, 4), CompleteGraph(6)}) {
    for (int trial = 0; trial < 10; ++trial) {
      EliminationOrdering sigma = rng.Permutation(g.NumVertices());
      EXPECT_EQ(EvaluateOrderingWidth(g, sigma),
                BucketEliminate(g, sigma).width)
          << g.name();
    }
  }
}

class EvaluatorRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(EvaluatorRandomTest, MatchesBucketEliminationOnRandomGraphs) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  int n = 5 + rng.UniformInt(30);
  int max_m = n * (n - 1) / 2;
  int m = rng.UniformInt(max_m + 1);
  Graph g = RandomGraph(n, m, seed + 1000);
  for (int trial = 0; trial < 5; ++trial) {
    EliminationOrdering sigma = rng.Permutation(n);
    EXPECT_EQ(EvaluateOrderingWidth(g, sigma), BucketEliminate(g, sigma).width)
        << "n=" << n << " m=" << m << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorRandomTest, ::testing::Range(0, 20));

TEST(EvaluatorTest, BagsMatchBucketElimination) {
  Rng rng(7);
  Graph g = GridGraph(4, 4);
  EliminationOrdering sigma = rng.Permutation(16);
  auto bags = OrderingBags(g, sigma);
  EliminationTree t = BucketEliminate(g, sigma);
  ASSERT_EQ(bags.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    std::vector<int> got = bags[i];
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, t.bags[sigma[i]].ToVector()) << "position " << i;
  }
}

TEST(EvaluatorTest, EmptyAndTinyGraphs) {
  Graph g1(1);
  EXPECT_EQ(EvaluateOrderingWidth(g1, {0}), 0);
  Graph g2(2);
  g2.AddEdge(0, 1);
  EXPECT_EQ(EvaluateOrderingWidth(g2, {0, 1}), 1);
  EXPECT_EQ(EvaluateOrderingWidth(g2, {1, 0}), 1);
}

}  // namespace
}  // namespace hypertree
