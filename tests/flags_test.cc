#include "util/flags.h"

#include <gtest/gtest.h>

namespace hypertree {
namespace {

Flags ParseArgs(std::vector<std::string> args) {
  std::vector<char*> argv = {const_cast<char*>("prog")};
  for (auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsForm) {
  Flags f = ParseArgs({"--name=value", "--n=42", "--ratio=0.5"});
  EXPECT_TRUE(f.Has("name"));
  EXPECT_EQ(f.GetString("name"), "value");
  EXPECT_EQ(f.GetInt("n"), 42);
  EXPECT_DOUBLE_EQ(f.GetDouble("ratio"), 0.5);
}

TEST(FlagsTest, ValuesOnlyAttachWithEquals) {
  // "--plant input.hg" must keep input.hg positional (boolean flag
  // followed by a file), so space-separated values are not supported.
  Flags f = ParseArgs({"--plant", "input.hg"});
  EXPECT_TRUE(f.GetBool("plant"));
  EXPECT_EQ(f.positional(), (std::vector<std::string>{"input.hg"}));
}

TEST(FlagsTest, BareBooleans) {
  Flags f = ParseArgs({"--verbose", "--quiet=false"});
  EXPECT_TRUE(f.GetBool("verbose"));
  EXPECT_FALSE(f.GetBool("quiet", true));
  EXPECT_FALSE(f.GetBool("absent"));
  EXPECT_TRUE(f.GetBool("absent", true));
}

TEST(FlagsTest, Positional) {
  Flags f = ParseArgs({"--a=1", "input.hg", "more"});
  EXPECT_EQ(f.positional(),
            (std::vector<std::string>{"input.hg", "more"}));
}

TEST(FlagsTest, DefaultsOnAbsentOrBad) {
  Flags f = ParseArgs({"--n=notanumber"});
  EXPECT_EQ(f.GetInt("n", 9), 9);
  EXPECT_EQ(f.GetInt("missing", -3), -3);
  EXPECT_EQ(f.GetString("missing", "d"), "d");
  EXPECT_DOUBLE_EQ(f.GetDouble("missing", 1.5), 1.5);
}

}  // namespace
}  // namespace hypertree
