#include "ls/local_search.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "hypergraph/generators.h"
#include "ordering/evaluator.h"
#include "td/branch_and_bound.h"

namespace hypertree {
namespace {

LocalSearchConfig Config(LocalSearchMethod method, uint64_t seed) {
  LocalSearchConfig cfg;
  cfg.method = method;
  cfg.max_evaluations = 6000;
  cfg.seed = seed;
  return cfg;
}

class LsMethodTest : public ::testing::TestWithParam<int> {};

TEST_P(LsMethodTest, ReachesKnownWidths) {
  LocalSearchMethod method = static_cast<LocalSearchMethod>(GetParam());
  // Cycle: tw 2; complete graph: tw 6; both easy plateaus.
  EXPECT_EQ(LsTreewidth(CycleGraph(12), Config(method, 1)).best_fitness, 2);
  EXPECT_EQ(LsTreewidth(CompleteGraph(7), Config(method, 2)).best_fitness, 6);
}

TEST_P(LsMethodTest, WitnessMatchesFitness) {
  LocalSearchMethod method = static_cast<LocalSearchMethod>(GetParam());
  Graph g = GridGraph(5, 5);
  LocalSearchResult res = LsTreewidth(g, Config(method, 3));
  ASSERT_TRUE(IsValidOrdering(res.best, 25));
  EXPECT_EQ(EvaluateOrderingWidth(g, res.best), res.best_fitness);
}

TEST_P(LsMethodTest, NeverBelowExact) {
  LocalSearchMethod method = static_cast<LocalSearchMethod>(GetParam());
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Graph g = RandomGraph(14, 30, seed);
    WidthResult exact = BranchAndBoundTreewidth(g);
    ASSERT_TRUE(exact.exact);
    EXPECT_GE(LsTreewidth(g, Config(method, seed)).best_fitness,
              exact.upper_bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, LsMethodTest, ::testing::Range(0, 3));

TEST(LocalSearchTest, GhwVariantWorks) {
  LocalSearchResult res =
      LsGhw(CycleHypergraph(10, 2),
            Config(LocalSearchMethod::kIterated, 5), CoverMode::kExact);
  EXPECT_EQ(res.best_fitness, 2);
}

TEST(LocalSearchTest, DeterministicForFixedSeed) {
  Graph g = GridGraph(5, 5);
  LocalSearchConfig cfg = Config(LocalSearchMethod::kSimulatedAnnealing, 9);
  EXPECT_EQ(LsTreewidth(g, cfg).best_fitness,
            LsTreewidth(g, cfg).best_fitness);
}

TEST(LocalSearchTest, EvaluationBudgetRespected) {
  LocalSearchConfig cfg = Config(LocalSearchMethod::kHillClimbing, 11);
  cfg.max_evaluations = 100;
  LocalSearchResult res = LsTreewidth(GridGraph(6, 6), cfg);
  EXPECT_LE(res.evaluations, 102);
}

}  // namespace
}  // namespace hypertree
