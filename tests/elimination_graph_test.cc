#include "graph/elimination_graph.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/rng.h"

namespace hypertree {
namespace {

TEST(EliminationGraphTest, EliminateConnectsNeighbors) {
  // Path 0-1-2: eliminating 1 must connect 0 and 2.
  Graph g = PathGraph(3);
  EliminationGraph eg(g);
  EXPECT_FALSE(eg.HasEdge(0, 2));
  int degree = eg.Eliminate(1);
  EXPECT_EQ(degree, 2);
  EXPECT_TRUE(eg.HasEdge(0, 2));
  EXPECT_FALSE(eg.IsActive(1));
  EXPECT_EQ(eg.NumActive(), 2);
}

TEST(EliminationGraphTest, UndoRestoresExactState) {
  Graph g = CycleGraph(5);
  EliminationGraph eg(g);
  eg.Eliminate(0);
  eg.Eliminate(2);
  eg.UndoElimination();
  eg.UndoElimination();
  EXPECT_EQ(eg.NumActive(), 5);
  for (int v = 0; v < 5; ++v) {
    EXPECT_TRUE(eg.IsActive(v));
    EXPECT_EQ(eg.Degree(v), 2);
  }
  EXPECT_TRUE(eg.HasEdge(0, 1));
  EXPECT_TRUE(eg.HasEdge(0, 4));
  EXPECT_FALSE(eg.HasEdge(1, 4));
}

TEST(EliminationGraphTest, RandomEliminateUndoRoundTrip) {
  Rng rng(5);
  Graph g = RandomGraph(30, 120, 99);
  EliminationGraph eg(g);
  // Snapshot initial adjacency.
  auto snapshot = [&eg](int n) {
    std::vector<std::vector<int>> adj(n);
    for (int v = 0; v < n; ++v) {
      if (eg.IsActive(v)) adj[v] = eg.Neighbors(v);
    }
    return adj;
  };
  auto before = snapshot(30);
  std::vector<int> order = rng.Permutation(30);
  for (int i = 0; i < 20; ++i) eg.Eliminate(order[i]);
  for (int i = 0; i < 20; ++i) eg.UndoElimination();
  EXPECT_EQ(snapshot(30), before);
}

TEST(EliminationGraphTest, FillInCounts) {
  // Star center: all leaf pairs are non-adjacent.
  Graph g(5);
  for (int leaf = 1; leaf < 5; ++leaf) g.AddEdge(0, leaf);
  EliminationGraph eg(g);
  EXPECT_EQ(eg.FillIn(0), 6);  // C(4,2) missing edges
  EXPECT_EQ(eg.FillIn(1), 0);  // leaf has a single neighbor
}

TEST(EliminationGraphTest, Simplicial) {
  Graph g = CompleteGraph(4);
  EliminationGraph eg(g);
  for (int v = 0; v < 4; ++v) EXPECT_TRUE(eg.IsSimplicial(v));
  Graph path = PathGraph(3);
  EliminationGraph ep(path);
  EXPECT_TRUE(ep.IsSimplicial(0));   // endpoint
  EXPECT_FALSE(ep.IsSimplicial(1));  // middle of the path
}

TEST(EliminationGraphTest, AlmostSimplicial) {
  // C4: each vertex has two non-adjacent neighbors; removing either one
  // leaves a single vertex (trivially a clique) -> almost simplicial.
  Graph g = CycleGraph(4);
  EliminationGraph eg(g);
  int special = -1;
  EXPECT_TRUE(eg.IsAlmostSimplicial(0, &special));
  EXPECT_TRUE(special == 1 || special == 3);
  // A simplicial vertex is not *almost* simplicial.
  Graph k = CompleteGraph(3);
  EliminationGraph ek(k);
  EXPECT_FALSE(ek.IsAlmostSimplicial(0, nullptr));
}

TEST(EliminationGraphTest, CurrentGraphRemaps) {
  Graph g = CycleGraph(4);
  EliminationGraph eg(g);
  eg.Eliminate(0);
  std::vector<int> old_ids;
  Graph cur = eg.CurrentGraph(&old_ids);
  EXPECT_EQ(cur.NumVertices(), 3);
  EXPECT_EQ(old_ids, (std::vector<int>{1, 2, 3}));
  // After eliminating 0 in C4: 1-3 edge filled; triangle 1,2,3.
  EXPECT_EQ(cur.NumEdges(), 3);
}

}  // namespace
}  // namespace hypertree
