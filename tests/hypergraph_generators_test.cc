#include "hypergraph/generators.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "hypergraph/acyclicity.h"

namespace hypertree {
namespace {

TEST(HypergraphGeneratorsTest, AdderShape) {
  Hypergraph h = AdderHypergraph(10);
  EXPECT_EQ(h.NumVertices(), 6 * 10 + 11);
  EXPECT_EQ(h.NumEdges(), 50);  // five gates per bit
  EXPECT_EQ(h.MaxEdgeSize(), 3);
  EXPECT_TRUE(IsConnected(h.PrimalGraph()));
  EXPECT_FALSE(IsAlphaAcyclic(h));
}

TEST(HypergraphGeneratorsTest, BridgeShape) {
  Hypergraph h = BridgeHypergraph(5);
  EXPECT_EQ(h.NumVertices(), 16);
  EXPECT_EQ(h.NumEdges(), 25);
  EXPECT_EQ(h.MaxEdgeSize(), 2);
  EXPECT_TRUE(IsConnected(h.PrimalGraph()));
}

TEST(HypergraphGeneratorsTest, CliqueShape) {
  Hypergraph h = CliqueHypergraph(6);
  EXPECT_EQ(h.NumVertices(), 6);
  EXPECT_EQ(h.NumEdges(), 15);
  EXPECT_EQ(h.PrimalGraph().NumEdges(), 15);
}

TEST(HypergraphGeneratorsTest, GridShapes) {
  Hypergraph g2 = Grid2DHypergraph(4);
  EXPECT_EQ(g2.NumVertices(), 16);
  EXPECT_EQ(g2.NumEdges(), 24);
  Hypergraph g3 = Grid3DHypergraph(3);
  EXPECT_EQ(g3.NumVertices(), 27);
  EXPECT_EQ(g3.NumEdges(), 54);
}

TEST(HypergraphGeneratorsTest, CycleHypergraph) {
  Hypergraph h = CycleHypergraph(8, 3);
  EXPECT_EQ(h.NumVertices(), 8);
  EXPECT_EQ(h.NumEdges(), 8);
  EXPECT_EQ(h.MaxEdgeSize(), 3);
  EXPECT_FALSE(IsAlphaAcyclic(h));
}

TEST(HypergraphGeneratorsTest, RandomHypergraphRespectsArity) {
  Hypergraph h = RandomHypergraph(40, 60, 2, 5, 21);
  EXPECT_EQ(h.NumEdges(), 60);
  for (int e = 0; e < h.NumEdges(); ++e) {
    EXPECT_GE(h.EdgeSize(e), 2);
    EXPECT_LE(h.EdgeSize(e), 5);
  }
}

TEST(HypergraphGeneratorsTest, RandomHypergraphDeterministic) {
  Hypergraph a = RandomHypergraph(20, 30, 2, 4, 5);
  Hypergraph b = RandomHypergraph(20, 30, 2, 4, 5);
  for (int e = 0; e < a.NumEdges(); ++e) {
    EXPECT_EQ(a.EdgeVertices(e), b.EdgeVertices(e));
  }
}

TEST(HypergraphGeneratorsTest, RandomAcyclicIsAcyclic) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Hypergraph h = RandomAcyclicHypergraph(20, 4, seed);
    EXPECT_TRUE(IsAlphaAcyclic(h)) << "seed " << seed;
  }
}

TEST(HypergraphGeneratorsTest, CircuitShape) {
  Hypergraph h = CircuitHypergraph(8, 40, 13);
  EXPECT_EQ(h.NumVertices(), 48);
  EXPECT_EQ(h.NumEdges(), 40);
  for (int e = 0; e < h.NumEdges(); ++e) {
    EXPECT_GE(h.EdgeSize(e), 2);
    EXPECT_LE(h.EdgeSize(e), 4);
  }
}

}  // namespace
}  // namespace hypertree
