#include "io/ghd_format.h"

#include <sstream>

#include <gtest/gtest.h>

#include "ghd/ghw_from_ordering.h"
#include "hypergraph/generators.h"
#include "ordering/heuristics.h"
#include "util/rng.h"

namespace hypertree {
namespace {

GeneralizedHypertreeDecomposition MakeGhd(const Hypergraph& h,
                                          uint64_t seed) {
  GhwEvaluator eval(h);
  Rng rng(seed);
  return eval.BuildGhd(MinFillOrdering(eval.primal(), &rng),
                       CoverMode::kExact);
}

TEST(GhdFormatTest, RoundTrip) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Hypergraph h = RandomHypergraph(12, 14, 2, 4, seed * 3 + 1);
    GeneralizedHypertreeDecomposition ghd = MakeGhd(h, seed);
    std::ostringstream out;
    WriteGhd(ghd, h, out);
    std::istringstream in(out.str());
    std::string error;
    auto back = ReadGhd(in, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->NumNodes(), ghd.NumNodes());
    EXPECT_EQ(back->Width(), ghd.Width());
    for (int p = 0; p < ghd.NumNodes(); ++p) {
      EXPECT_EQ(back->td().Bag(p), ghd.td().Bag(p));
      EXPECT_EQ(back->Lambda(p), ghd.Lambda(p));
    }
    std::string why;
    EXPECT_TRUE(back->IsValidFor(h, &why)) << "seed " << seed << ": " << why;
  }
}

TEST(GhdFormatTest, HandWrittenExample) {
  // Example 5's width-2 GHD, written by hand.
  std::istringstream in(
      "% by hand\n"
      "s ghd 2 2 6 3\n"
      "n 1 c 1 3 4 5 6 ; l 2 3\n"
      "n 2 c 1 2 3 ; l 1\n"
      "e 1 2\n");
  std::string error;
  auto ghd = ReadGhd(in, &error);
  ASSERT_TRUE(ghd.has_value()) << error;
  Hypergraph h(6);
  h.AddEdge({0, 1, 2});
  h.AddEdge({0, 4, 5});
  h.AddEdge({2, 3, 4});
  std::string why;
  EXPECT_TRUE(ghd->IsValidFor(h, &why)) << why;
  EXPECT_EQ(ghd->Width(), 2);
}

TEST(GhdFormatTest, ParseErrors) {
  {
    std::istringstream in("n 1 c 1 ; l 1\n");
    std::string error;
    EXPECT_FALSE(ReadGhd(in, &error).has_value());  // node before header
    EXPECT_FALSE(error.empty());
  }
  {
    std::istringstream in("s ghd 1 1 2 1\nn 1 c 9 ; l 1\n");
    EXPECT_FALSE(ReadGhd(in).has_value());  // chi out of range
  }
  {
    std::istringstream in("s ghd 1 1 2 1\nn 1 c 1 ; l 5\n");
    EXPECT_FALSE(ReadGhd(in).has_value());  // lambda out of range
  }
  {
    std::istringstream in("s ghd 2 1 2 1\nn 1 c 1 ; l 1\nn 1 c 2 ; l 1\n");
    EXPECT_FALSE(ReadGhd(in).has_value());  // duplicate node id
  }
  {
    std::istringstream in("s ghd 1 1 1 1\nz\n");
    EXPECT_FALSE(ReadGhd(in).has_value());  // unknown tag
  }
}

}  // namespace
}  // namespace hypertree
