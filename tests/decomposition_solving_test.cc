#include "csp/decomposition_solving.h"

#include <gtest/gtest.h>

#include "csp/backtracking.h"
#include "csp/generators.h"
#include "ghd/ghw_from_ordering.h"
#include "hypergraph/generators.h"
#include "ordering/heuristics.h"
#include "td/tree_decomposition.h"
#include "util/rng.h"

namespace hypertree {
namespace {

// Builds a TD and a GHD of the CSP's constraint hypergraph via min-fill.
struct Decompositions {
  TreeDecomposition td;
  GeneralizedHypertreeDecomposition ghd;
};

Decompositions Decompose(const Csp& csp, uint64_t seed) {
  Hypergraph h = csp.ConstraintHypergraph();
  GhwEvaluator eval(h);
  Rng rng(seed);
  EliminationOrdering sigma = MinFillOrdering(eval.primal(), &rng);
  return {TreeDecompositionFromOrdering(eval.primal(), sigma),
          eval.BuildGhd(sigma, CoverMode::kExact)};
}

TEST(DecompositionSolvingTest, AustraliaViaTd) {
  Csp csp = AustraliaMapColoring();
  Decompositions d = Decompose(csp, 1);
  DecompositionSolveStats stats;
  auto solution = SolveViaTreeDecomposition(csp, d.td, &stats);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(csp.IsSolution(*solution));
  EXPECT_GT(stats.bag_tuples, 0);
}

TEST(DecompositionSolvingTest, AustraliaViaGhd) {
  Csp csp = AustraliaMapColoring();
  Decompositions d = Decompose(csp, 2);
  auto solution = SolveViaGhd(csp, d.ghd);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(csp.IsSolution(*solution));
}

class SolverAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverAgreementTest, AllSolversAgreeOnSatisfiability) {
  uint64_t seed = GetParam();
  Hypergraph h = RandomHypergraph(9, 10, 2, 3, seed * 13);
  for (double tightness : {0.15, 0.4}) {
    Csp csp =
        RandomCspFromHypergraph(h, 2, tightness, /*plant_solution=*/false,
                                seed * 7 + static_cast<uint64_t>(tightness * 10));
    bool direct = BacktrackingSolve(csp).has_value();
    Decompositions d = Decompose(csp, seed);
    auto td_solution = SolveViaTreeDecomposition(csp, d.td);
    auto ghd_solution = SolveViaGhd(csp, d.ghd);
    EXPECT_EQ(td_solution.has_value(), direct)
        << "TD seed " << seed << " t " << tightness;
    EXPECT_EQ(ghd_solution.has_value(), direct)
        << "GHD seed " << seed << " t " << tightness;
    if (td_solution.has_value()) {
      EXPECT_TRUE(csp.IsSolution(*td_solution));
    }
    if (ghd_solution.has_value()) {
      EXPECT_TRUE(csp.IsSolution(*ghd_solution));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgreementTest, ::testing::Range(0, 12));

TEST(DecompositionSolvingTest, PlantedLargeInstanceSolvedViaTd) {
  // A 40-variable planted instance that plain backtracking can also solve,
  // but the decomposition path exercises big bag relations.
  Hypergraph h = Grid2DHypergraph(6);
  Csp csp = RandomCspFromHypergraph(h, 2, 0.6, /*plant_solution=*/true, 9);
  Decompositions d = Decompose(csp, 3);
  auto solution = SolveViaTreeDecomposition(csp, d.td);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(csp.IsSolution(*solution));
}

TEST(DecompositionSolvingTest, SatViaGhd) {
  Csp csp = SatCsp(5, {{-1, 2, 3}, {1, -4}, {-3, -5}});
  Decompositions d = Decompose(csp, 4);
  auto solution = SolveViaGhd(csp, d.ghd);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(csp.IsSolution(*solution));
}

TEST(DecompositionSolvingTest, UnsatDetected) {
  Csp csp = SatCsp(2, {{1}, {-1}});
  Decompositions d = Decompose(csp, 5);
  EXPECT_FALSE(SolveViaTreeDecomposition(csp, d.td).has_value());
  EXPECT_FALSE(SolveViaGhd(csp, d.ghd).has_value());
}

}  // namespace
}  // namespace hypertree
