// Randomized equivalence and determinism tests for the morsel-driven
// join engine (src/csp/morsel_engine.h): every engine mode — dense,
// hash, generic-fallback, pooled, chunked and spilled — must produce
// the exact output (values AND row order) of a naive reference, and the
// same bytes whatever the thread count or memory budget. The spill
// byte-identity cases here are the ones scripts/run_asan_checks.sh and
// the CI low-memory job lean on (docs/SOLVING.md).

#include "csp/morsel_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "csp/morsel.h"
#include "csp/relation.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hypertree {
namespace {

Relation RandomRelation(const std::vector<int>& schema, int rows, int lo,
                        int hi, Rng* rng) {
  Relation r(schema);
  std::vector<int> row(schema.size());
  for (int t = 0; t < rows; ++t) {
    for (int& v : row) {
      v = lo + static_cast<int>(rng->UniformInt(hi - lo + 1));
    }
    r.AddRow(row.data());
  }
  return r;
}

// Naive reference join: probe-row order, build ties in ascending build
// row order — the documented Relation::Join contract.
Relation NaiveJoin(const Relation& a, const Relation& b) {
  std::vector<std::pair<int, int>> shared;  // (pos in a, pos in b)
  std::vector<int> out_schema = a.schema();
  std::vector<int> extra;
  for (size_t j = 0; j < b.schema().size(); ++j) {
    const int pa = a.IndexOf(b.schema()[j]);
    if (pa >= 0) {
      shared.emplace_back(pa, static_cast<int>(j));
    } else {
      out_schema.push_back(b.schema()[j]);
      extra.push_back(static_cast<int>(j));
    }
  }
  Relation out(out_schema);
  std::vector<int> row(out_schema.size());
  for (int t = 0; t < a.Size(); ++t) {
    const int* ra = a.Row(t);
    for (int u = 0; u < b.Size(); ++u) {
      const int* rb = b.Row(u);
      bool match = true;
      for (const auto& [pa, pb] : shared) {
        if (ra[pa] != rb[pb]) match = false;
      }
      if (!match) continue;
      std::copy(ra, ra + a.Arity(), row.begin());
      for (size_t i = 0; i < extra.size(); ++i) {
        row[a.Arity() + i] = rb[extra[i]];
      }
      out.AddRow(row.data());
    }
  }
  return out;
}

Relation NaiveSemijoin(const Relation& a, const Relation& b) {
  std::vector<std::pair<int, int>> shared;
  for (size_t j = 0; j < b.schema().size(); ++j) {
    const int pa = a.IndexOf(b.schema()[j]);
    if (pa >= 0) shared.emplace_back(pa, static_cast<int>(j));
  }
  Relation out(a.schema());
  if (shared.empty()) {
    // No shared variables: keep everything iff b is non-empty.
    return b.Empty() ? out : a;
  }
  for (int t = 0; t < a.Size(); ++t) {
    const int* ra = a.Row(t);
    bool keep = false;
    for (int u = 0; u < b.Size() && !keep; ++u) {
      const int* rb = b.Row(u);
      keep = true;
      for (const auto& [pa, pb] : shared) {
        if (ra[pa] != rb[pb]) keep = false;
      }
    }
    if (keep) out.AddRow(ra);
  }
  return out;
}

// Naive reference project: first occurrence wins the output order.
Relation NaiveProject(const Relation& a, const std::vector<int>& vars) {
  std::vector<int> pos;
  for (int v : vars) pos.push_back(a.IndexOf(v));
  Relation out(vars);
  std::vector<int> row(vars.size());
  for (int t = 0; t < a.Size(); ++t) {
    const int* ra = a.Row(t);
    for (size_t i = 0; i < pos.size(); ++i) row[i] = ra[pos[i]];
    out.InsertIfAbsent(row.data());
  }
  return out;
}

void ExpectSame(const Relation& want, const Relation& got) {
  ASSERT_EQ(want.schema(), got.schema());
  ASSERT_EQ(want.Size(), got.Size());
  EXPECT_EQ(want.data(), got.data());  // values AND row order
}

// Value ranges that steer the engine through each mode: tiny domains
// (dense tables), wide values (hash tables), negatives (generic
// fallback — keys do not pack).
struct Mode {
  int lo;
  int hi;
  const char* name;
};
const Mode kModes[] = {
    {0, 2, "dense"}, {0, 4000000, "hash"}, {-3, 3, "generic"}};

class MorselEngineTest : public ::testing::Test {
 protected:
  void TearDown() override { SetMemoryBudget(0); }
};

TEST_F(MorselEngineTest, JoinMatchesNaiveAllModes) {
  Rng rng(1);
  ThreadPool pool(4);
  for (const Mode& m : kModes) {
    for (int trial = 0; trial < 12; ++trial) {
      SCOPED_TRACE(std::string(m.name) + " trial=" + std::to_string(trial));
      const int ra = 1 + static_cast<int>(rng.UniformInt(3));
      const int rb = 1 + static_cast<int>(rng.UniformInt(3));
      // Schemas share a random prefix of variable ids.
      std::vector<int> sa, sb;
      for (int i = 0; i < ra; ++i) sa.push_back(i);
      const int shared = static_cast<int>(rng.UniformInt(ra + 1));
      for (int i = 0; i < shared; ++i) sb.push_back(i);
      for (int i = 0; i < rb; ++i) sb.push_back(100 + i);
      Relation a = RandomRelation(
          sa, static_cast<int>(rng.UniformInt(9000)), m.lo, m.hi, &rng);
      Relation b = RandomRelation(
          sb, static_cast<int>(rng.UniformInt(300)), m.lo, m.hi, &rng);
      const Relation want = NaiveJoin(a, b);
      ExpectSame(want, EngineJoin(a, b, nullptr));
      ExpectSame(want, EngineJoin(a, b, &pool));
      ExpectSame(want, a.Join(b));
    }
  }
}

TEST_F(MorselEngineTest, SemijoinMatchesNaiveAllModes) {
  Rng rng(2);
  ThreadPool pool(4);
  for (const Mode& m : kModes) {
    for (int trial = 0; trial < 12; ++trial) {
      SCOPED_TRACE(std::string(m.name) + " trial=" + std::to_string(trial));
      const int ra = 1 + static_cast<int>(rng.UniformInt(3));
      std::vector<int> sa, sb;
      for (int i = 0; i < ra; ++i) sa.push_back(i);
      const int shared = 1 + static_cast<int>(rng.UniformInt(ra));
      for (int i = 0; i < shared; ++i) sb.push_back(i);
      sb.push_back(100);
      Relation a = RandomRelation(
          sa, static_cast<int>(rng.UniformInt(9000)), m.lo, m.hi, &rng);
      Relation b = RandomRelation(
          sb, static_cast<int>(rng.UniformInt(400)), m.lo, m.hi, &rng);
      const Relation want = NaiveSemijoin(a, b);
      Relation serial = a;
      EngineSemijoinInPlace(&serial, b, nullptr);
      ExpectSame(want, serial);
      Relation pooled = a;
      EngineSemijoinInPlace(&pooled, b, &pool);
      ExpectSame(want, pooled);
      Relation member = a;
      member.SemijoinInPlace(b);
      ExpectSame(want, member);
    }
  }
}

TEST_F(MorselEngineTest, SemijoinEdgeCases) {
  // No shared variables / empty sides route through the generic path
  // with its documented drop-everything / keep-everything semantics.
  Relation a(std::vector<int>{0, 1});
  a.AddTuple({1, 2});
  a.AddTuple({3, 4});
  Relation empty_b(std::vector<int>{5});
  Relation full_b(std::vector<int>{5});
  full_b.AddTuple({7});
  Relation x = a;
  EngineSemijoinInPlace(&x, empty_b, nullptr);
  EXPECT_TRUE(x.Empty());
  Relation y = a;
  EngineSemijoinInPlace(&y, full_b, nullptr);
  EXPECT_EQ(2, y.Size());
  Relation z(std::vector<int>{0, 1});
  EngineSemijoinInPlace(&z, full_b, nullptr);
  EXPECT_TRUE(z.Empty());
}

TEST_F(MorselEngineTest, ProjectMatchesNaiveAllModes) {
  Rng rng(3);
  ThreadPool pool(4);
  for (const Mode& m : kModes) {
    for (int trial = 0; trial < 12; ++trial) {
      SCOPED_TRACE(std::string(m.name) + " trial=" + std::to_string(trial));
      const int ra = 1 + static_cast<int>(rng.UniformInt(4));
      std::vector<int> sa;
      for (int i = 0; i < ra; ++i) sa.push_back(i);
      std::vector<int> vars;
      for (int i = 0; i < ra; ++i) {
        if (rng.UniformInt(2) == 0) vars.push_back(i);
      }
      if (vars.empty()) vars.push_back(0);
      // Project first-occurrence order is part of the contract: shuffle
      // which variables are kept, not the row order.
      Relation a = RandomRelation(
          sa, static_cast<int>(rng.UniformInt(9000)), m.lo, m.hi, &rng);
      const Relation want = NaiveProject(a, vars);
      ExpectSame(want, EngineProject(a, vars, nullptr));
      ExpectSame(want, EngineProject(a, vars, &pool));
      ExpectSame(want, a.Project(vars));
    }
  }
}

TEST_F(MorselEngineTest, ChunkedRoundTripResidentAndSpilled) {
  Rng rng(4);
  Relation a = RandomRelation({0, 1, 2}, 10000, 0, 50, &rng);
  // Resident chunking views the flat buffer.
  ChunkedRelation resident{Relation(a)};
  EXPECT_FALSE(resident.spilled());
  EXPECT_EQ(static_cast<long>(a.Size()), resident.TotalRows());
  // Spilled form: write the same rows chunk by chunk, read them back.
  auto file = std::make_shared<SpillFile>();
  file->Open();
  ChunkedRelation spilled(a.schema(), file);
  spilled.ResizeChunks(resident.NumChunks());
  std::vector<int> scratch;
  for (int i = 0; i < resident.NumChunks(); ++i) {
    const int rows = resident.ChunkRows(i);
    const int* data = resident.LoadChunk(i, &scratch);
    const long long bytes =
        static_cast<long long>(rows) * a.Arity() * sizeof(int);
    const long long off = file->Allocate(bytes);
    file->WriteAt(off, data, static_cast<size_t>(bytes));
    spilled.SetChunk(i, off, rows);
  }
  spilled.FinishChunks();
  EXPECT_TRUE(spilled.spilled());
  EXPECT_EQ(resident.TotalRows(), spilled.TotalRows());
  std::vector<int> scratch2;
  for (int i = 0; i < resident.NumChunks(); ++i) {
    ASSERT_EQ(resident.ChunkRows(i), spilled.ChunkRows(i));
    const int* want = resident.LoadChunk(i, &scratch);
    const int* got = spilled.LoadChunk(i, &scratch2);
    const size_t values =
        static_cast<size_t>(resident.ChunkRows(i)) * a.Arity();
    EXPECT_EQ(0, std::memcmp(want, got, values * sizeof(int)));
  }
  Relation back = std::move(spilled).ToRelation();
  ExpectSame(a, back);
}

TEST_F(MorselEngineTest, SpilledJoinChainBitIdenticalToUnlimited) {
  // The satellite spill test: a join chain big enough to blow a tiny
  // budget must spill (nonzero relation.spill counters) and still
  // produce byte-identical projected output, pooled or not.
  Rng rng(5);
  ThreadPool pool(4);
  Relation r1 = RandomRelation({0, 1}, 4000, 0, 40, &rng);
  Relation r2 = RandomRelation({1, 2}, 4000, 0, 40, &rng);
  Relation r3 = RandomRelation({2, 3}, 300, 0, 40, &rng);
  const std::vector<int> chi = {0, 3};

  auto chain = [&](ThreadPool* p) {
    ChunkedRelation acc{Relation(r1)};
    acc = EngineJoinChunked(acc, r2, p);
    acc = EngineJoinChunked(acc, r3, p);
    return EngineProjectChunked(acc, chi, p);
  };

  SetMemoryBudget(0);
  const Relation unlimited = chain(nullptr);

  SetMemoryBudget(64 << 10);  // 64 KiB: the r1⋈r2 intermediate exceeds it
  const long spills_before = SpillPartitions().Value();
  const Relation tiny = chain(nullptr);
  EXPECT_GT(SpillPartitions().Value(), spills_before)
      << "budgeted chain never spilled — the test lost its point";
  ExpectSame(unlimited, tiny);

  const Relation tiny_pooled = chain(&pool);
  ExpectSame(unlimited, tiny_pooled);

  // Randomized sweep: random budgets from absurdly small on up must
  // never change a byte.
  for (int trial = 0; trial < 6; ++trial) {
    SetMemoryBudget(1 + static_cast<long long>(rng.UniformInt(1 << 20)));
    SCOPED_TRACE("budget=" + std::to_string(MemoryBudget()));
    ExpectSame(unlimited, chain(trial % 2 == 0 ? &pool : nullptr));
  }
}

TEST_F(MorselEngineTest, PartitionedSemijoinMatchesUnlimited) {
  Rng rng(6);
  ThreadPool pool(4);
  Relation left = RandomRelation({0, 1}, 20000, 0, 3000000, &rng);
  Relation right = RandomRelation({1, 2}, 20000, 0, 3000000, &rng);
  SetMemoryBudget(0);
  Relation want = left;
  EngineSemijoinInPlace(&want, right, nullptr);
  // A budget far below the hash-table footprint forces the grace
  // partitioning path (the dense bitmap is also over budget).
  SetMemoryBudget(16 << 10);
  const long spills_before = SpillPartitions().Value();
  Relation got = left;
  EngineSemijoinInPlace(&got, right, nullptr);
  EXPECT_GT(SpillPartitions().Value(), spills_before)
      << "budgeted semijoin never partitioned — the test lost its point";
  ExpectSame(want, got);
  Relation pooled = left;
  EngineSemijoinInPlace(&pooled, right, &pool);
  ExpectSame(want, pooled);
}

TEST_F(MorselEngineTest, ParseByteSize) {
  long long v = -1;
  EXPECT_TRUE(ParseByteSize("0", &v));
  EXPECT_EQ(0, v);
  EXPECT_TRUE(ParseByteSize("12345", &v));
  EXPECT_EQ(12345, v);
  EXPECT_TRUE(ParseByteSize("4k", &v));
  EXPECT_EQ(4096, v);
  EXPECT_TRUE(ParseByteSize("256M", &v));
  EXPECT_EQ(256LL << 20, v);
  EXPECT_TRUE(ParseByteSize("2g", &v));
  EXPECT_EQ(2LL << 30, v);
  EXPECT_FALSE(ParseByteSize("", &v));
  EXPECT_FALSE(ParseByteSize("k", &v));
  EXPECT_FALSE(ParseByteSize("12x", &v));
  EXPECT_FALSE(ParseByteSize("-5", &v));
  EXPECT_FALSE(ParseByteSize("12 34", &v));
}

}  // namespace
}  // namespace hypertree
