// ValidateDecomposition is the fatal form of IsValidFor: it must stay
// silent on a correct decomposition and abort — naming the violated
// condition — on a deliberately corrupted one.

#include <string>
#include <utility>

#include "ghd/ghd.h"
#include "ghd/ghw_from_ordering.h"
#include "gtest/gtest.h"
#include "hd/hypertree_decomposition.h"
#include "ordering/heuristics.h"
#include "util/rng.h"

namespace hypertree {
namespace {

Hypergraph Example5() {
  Hypergraph h(6);
  h.AddEdge({0, 1, 2}, "C1");
  h.AddEdge({0, 4, 5}, "C2");
  h.AddEdge({2, 3, 4}, "C3");
  return h;
}

GeneralizedHypertreeDecomposition WidthTwoGhd() {
  TreeDecomposition td(6);
  int root = td.AddNode(Bitset::FromVector(6, {0, 2, 3, 4, 5}));
  int leaf = td.AddNode(Bitset::FromVector(6, {0, 1, 2}));
  td.AddTreeEdge(root, leaf);
  GeneralizedHypertreeDecomposition ghd(std::move(td));
  ghd.SetLambda(root, {1, 2});
  ghd.SetLambda(leaf, {0});
  return ghd;
}

TEST(ValidateDecompositionTest, AcceptsManualGhd) {
  Hypergraph h = Example5();
  ValidateDecomposition(h, WidthTwoGhd());  // must not abort
}

TEST(ValidateDecompositionTest, AcceptsOrderingBuiltGhd) {
  Hypergraph h = Example5();
  GhwEvaluator eval(h);
  Rng rng(7);
  EliminationOrdering sigma = MinFillOrdering(eval.primal(), &rng);
  ValidateDecomposition(h, eval.BuildGhd(sigma, CoverMode::kExact));
}

TEST(ValidateDecompositionDeathTest, CatchesEmptiedLambda) {
  Hypergraph h = Example5();
  GeneralizedHypertreeDecomposition ghd = WidthTwoGhd();
  ghd.SetLambda(0, {});  // root bag {0,2,3,4,5} is now uncovered
  EXPECT_DEATH(ValidateDecomposition(h, ghd), "invalid GHD");
}

TEST(ValidateDecompositionDeathTest, CatchesWrongCover) {
  Hypergraph h = Example5();
  GeneralizedHypertreeDecomposition ghd = WidthTwoGhd();
  ghd.SetLambda(1, {1});  // C2 = {0,4,5} does not cover leaf bag {0,1,2}
  EXPECT_DEATH(ValidateDecomposition(h, ghd), "invalid GHD");
}

TEST(ValidateDecompositionDeathTest, CatchesBrokenConnectedness) {
  Hypergraph h = Example5();
  // Vertex 0 appears in the two leaves but not in the root between them,
  // violating the connectedness condition.
  TreeDecomposition td(6);
  int root = td.AddNode(Bitset::FromVector(6, {2, 3, 4}));
  int a = td.AddNode(Bitset::FromVector(6, {0, 1, 2}));
  int b = td.AddNode(Bitset::FromVector(6, {0, 4, 5}));
  td.AddTreeEdge(root, a);
  td.AddTreeEdge(root, b);
  GeneralizedHypertreeDecomposition ghd(std::move(td));
  ghd.SetLambda(root, {2});
  ghd.SetLambda(a, {0});
  ghd.SetLambda(b, {1});
  EXPECT_DEATH(ValidateDecomposition(h, ghd), "invalid GHD");
}

TEST(ValidateDecompositionHdTest, AcceptsManualHd) {
  Hypergraph h = Example5();
  HypertreeDecomposition hd(6);
  int root = hd.AddNode(Bitset::FromVector(6, {0, 2, 3, 4, 5}), {1, 2}, -1);
  hd.AddNode(Bitset::FromVector(6, {0, 1, 2}), {0, 1}, root);
  ValidateDecomposition(h, hd);  // must not abort
}

TEST(ValidateDecompositionHdDeathTest, CatchesDescendantViolation) {
  Hypergraph h = Example5();
  // Root uses lambda {C1} but chi(root) omits vertex 1 even though 1 occurs
  // in chi of the subtree below — the special condition 4 of hypertree
  // decompositions.
  HypertreeDecomposition hd(6);
  int root = hd.AddNode(Bitset::FromVector(6, {0, 2}), {0}, -1);
  int mid = hd.AddNode(Bitset::FromVector(6, {0, 1, 2}), {0}, root);
  hd.AddNode(Bitset::FromVector(6, {2, 3, 4}), {2}, mid);
  hd.AddNode(Bitset::FromVector(6, {0, 4, 5}), {1}, mid);
  // The underlying GHD conditions hold; only condition 4 is violated.
  std::string why;
  ASSERT_FALSE(hd.IsValidFor(h, &why));
  EXPECT_DEATH(ValidateDecomposition(h, hd),
               "invalid hypertree decomposition");
}

}  // namespace
}  // namespace hypertree
