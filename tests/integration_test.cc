// End-to-end pipelines across modules: parse -> decompose -> validate ->
// solve, mirroring how a downstream user consumes the library.

#include <gtest/gtest.h>

#include "csp/decomposition_solving.h"
#include "csp/generators.h"
#include "ga/ga_ghw.h"
#include "ghd/astar.h"
#include "ghd/branch_and_bound.h"
#include "ghd/ghw_from_ordering.h"
#include "hd/det_k_decomp.h"
#include "hypergraph/generators.h"
#include "hypergraph/parser.h"
#include "ordering/heuristics.h"
#include "td/astar.h"
#include "td/branch_and_bound.h"
#include "td/tree_decomposition.h"
#include "util/rng.h"

namespace hypertree {
namespace {

constexpr char kInstance[] = R"(
% a small cyclic CSP instance in HyperBench format
c1(x1, x2, x3),
c2(x1, x5, x6),
c3(x3, x4, x5),
c4(x2, x4).
)";

TEST(IntegrationTest, ParseDecomposeValidateSolve) {
  std::string error;
  auto h = ReadHypergraphFromString(kInstance, &error);
  ASSERT_TRUE(h.has_value()) << error;
  ASSERT_EQ(h->NumVertices(), 6);
  ASSERT_EQ(h->NumEdges(), 4);

  // Exact ghw via both searches.
  WidthResult bb = BranchAndBoundGhw(*h);
  WidthResult as = AStarGhw(*h);
  ASSERT_TRUE(bb.exact && as.exact);
  EXPECT_EQ(bb.upper_bound, as.upper_bound);

  // Materialize the witness decomposition and check it.
  GhwEvaluator eval(*h);
  GeneralizedHypertreeDecomposition ghd =
      eval.BuildGhd(bb.best_ordering, CoverMode::kExact);
  std::string why;
  ASSERT_TRUE(ghd.IsValidFor(*h, &why)) << why;
  EXPECT_EQ(ghd.Width(), bb.upper_bound);

  // Attach a planted CSP and solve it through the decomposition.
  Csp csp = RandomCspFromHypergraph(*h, 3, 0.2, /*plant_solution=*/true, 7);
  auto solution = SolveViaGhd(csp, ghd);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(csp.IsSolution(*solution));
}

TEST(IntegrationTest, TreewidthPipelineOnColoring) {
  // Color a wheel-ish graph via its optimal tree decomposition.
  Graph g(6);
  for (int i = 0; i < 5; ++i) {
    g.AddEdge(i, (i + 1) % 5);
    g.AddEdge(i, 5);  // hub
  }
  WidthResult tw = AStarTreewidth(g);
  ASSERT_TRUE(tw.exact);
  EXPECT_EQ(tw.upper_bound, 3);  // wheel W5: treewidth 3
  TreeDecomposition td = TreeDecompositionFromOrdering(g, tw.best_ordering);
  ASSERT_TRUE(td.IsValidFor(g, nullptr));
  EXPECT_EQ(td.Width(), 3);
  Csp csp = GraphColoringCsp(g, 4);
  auto solution = SolveViaTreeDecomposition(csp, td);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(csp.IsSolution(*solution));
}

TEST(IntegrationTest, GaSeedsExactSearch) {
  // Use the GA's upper bound to prime BB-ghw (a standard pipeline).
  Hypergraph h = RandomHypergraph(12, 13, 2, 4, 5);
  GaConfig cfg;
  cfg.population_size = 30;
  cfg.max_iterations = 30;
  cfg.seed = 3;
  GaResult ga = GaGhw(h, cfg, CoverMode::kExact);
  GhwSearchOptions opts;
  opts.initial_upper_bound = ga.best_fitness;
  WidthResult bb = BranchAndBoundGhw(h, opts);
  ASSERT_TRUE(bb.exact);
  EXPECT_LE(bb.upper_bound, ga.best_fitness);
}

TEST(IntegrationTest, WidthMeasuresConsistentOnOneInstance) {
  auto h = ReadHypergraphFromString(kInstance);
  ASSERT_TRUE(h.has_value());
  WidthResult ghw = BranchAndBoundGhw(*h);
  WidthResult hw = HypertreeWidth(*h);
  WidthResult tw = BranchAndBoundTreewidth(h->PrimalGraph());
  ASSERT_TRUE(ghw.exact && hw.exact && tw.exact);
  EXPECT_LE(ghw.upper_bound, hw.upper_bound);
  EXPECT_LE(hw.upper_bound, tw.upper_bound + 1);
}

}  // namespace
}  // namespace hypertree
