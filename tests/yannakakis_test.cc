#include "csp/yannakakis.h"

#include <gtest/gtest.h>

#include "csp/backtracking.h"
#include "csp/generators.h"
#include "hypergraph/generators.h"

namespace hypertree {
namespace {

TEST(YannakakisTest, SimpleChain) {
  // R(0,1) - S(1,2) - T(2,3) with a single consistent combination.
  RelationTree tree;
  Relation r({0, 1});
  r.AddTuple({1, 2});
  r.AddTuple({5, 9});
  Relation s({1, 2});
  s.AddTuple({2, 3});
  Relation t({2, 3});
  t.AddTuple({3, 4});
  tree.relations = {r, s, t};
  tree.parent = {-1, 0, 1};
  tree.root = 0;
  auto result = AcyclicSolve(tree);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ((*result)[0], 1);
  EXPECT_EQ((*result)[1], 2);
  EXPECT_EQ((*result)[2], 3);
  EXPECT_EQ((*result)[3], 4);
}

TEST(YannakakisTest, DetectsInconsistency) {
  RelationTree tree;
  Relation r({0, 1});
  r.AddTuple({1, 2});
  Relation s({1, 2});
  s.AddTuple({9, 9});  // no tuple matches value 2 for variable 1
  tree.relations = {r, s};
  tree.parent = {-1, 0};
  tree.root = 0;
  EXPECT_FALSE(AcyclicSolve(tree).has_value());
}

TEST(YannakakisTest, EmptyTree) {
  RelationTree tree;
  auto result = AcyclicSolve(tree);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->empty());
}

TEST(YannakakisTest, SolveAcyclicCspAgainstBacktracking) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Hypergraph h = RandomAcyclicHypergraph(8, 3, seed);
    for (double tightness : {0.2, 0.5}) {
      Csp csp = RandomCspFromHypergraph(h, 2, tightness,
                                        /*plant_solution=*/false, seed * 3);
      auto direct = BacktrackingSolve(csp);
      auto acyclic = SolveAcyclicCsp(csp);
      EXPECT_EQ(direct.has_value(), acyclic.has_value())
          << "seed " << seed << " tightness " << tightness;
      if (acyclic.has_value()) {
        EXPECT_TRUE(csp.IsSolution(*acyclic));
      }
    }
  }
}

TEST(YannakakisTest, PlantedAcyclicAlwaysSolved) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Hypergraph h = RandomAcyclicHypergraph(12, 4, seed + 50);
    Csp csp = RandomCspFromHypergraph(h, 3, 0.1, /*plant_solution=*/true,
                                      seed);
    auto solution = SolveAcyclicCsp(csp);
    ASSERT_TRUE(solution.has_value()) << "seed " << seed;
    EXPECT_TRUE(csp.IsSolution(*solution));
  }
}

}  // namespace
}  // namespace hypertree
