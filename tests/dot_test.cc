#include "io/dot.h"

#include <sstream>

#include <gtest/gtest.h>

#include "ghd/ghw_from_ordering.h"
#include "graph/generators.h"
#include "hd/det_k_decomp.h"
#include "hypergraph/generators.h"
#include "ordering/heuristics.h"
#include "util/rng.h"

namespace hypertree {
namespace {

TEST(DotTest, GraphExport) {
  std::ostringstream out;
  WriteDot(CycleGraph(4), out);
  std::string dot = out.str();
  EXPECT_NE(dot.find("graph"), std::string::npos);
  EXPECT_NE(dot.find("v0 -- v1"), std::string::npos);
  EXPECT_NE(dot.find("v0 -- v3"), std::string::npos);
  EXPECT_EQ(dot.find("v1 -- v0"), std::string::npos);  // each edge once
}

TEST(DotTest, HypergraphExportIsBipartite) {
  Hypergraph h(3);
  h.AddEdge({0, 1, 2}, "abc");
  std::ostringstream out;
  WriteDot(h, out);
  std::string dot = out.str();
  EXPECT_NE(dot.find("e0 -- v0"), std::string::npos);
  EXPECT_NE(dot.find("e0 -- v2"), std::string::npos);
  EXPECT_NE(dot.find("abc"), std::string::npos);
}

TEST(DotTest, DecompositionExports) {
  Hypergraph h = Grid2DHypergraph(3);
  GhwEvaluator eval(h);
  Rng rng(1);
  EliminationOrdering sigma = MinFillOrdering(eval.primal(), &rng);
  TreeDecomposition td = TreeDecompositionFromOrdering(eval.primal(), sigma);
  {
    std::ostringstream out;
    WriteDot(td, out);
    EXPECT_NE(out.str().find("tree_decomposition"), std::string::npos);
    EXPECT_NE(out.str().find("b0"), std::string::npos);
  }
  {
    GeneralizedHypertreeDecomposition ghd =
        eval.BuildGhd(sigma, CoverMode::kExact);
    std::ostringstream out;
    WriteDot(ghd, h, out);
    EXPECT_NE(out.str().find("lambda="), std::string::npos);
    EXPECT_NE(out.str().find("chi="), std::string::npos);
  }
  {
    auto hd = DetKDecomp(h, 3);
    ASSERT_TRUE(hd.has_value());
    std::ostringstream out;
    WriteDot(*hd, h, out);
    EXPECT_NE(out.str().find("graph hd"), std::string::npos);
  }
}

}  // namespace
}  // namespace hypertree
