// End-to-end guarantees of the memoized, multi-threaded search core:
//
//  * determinism: HypertreeWidth with threads=1 and threads=8 returns the
//    same width AND the identical witness decomposition whenever the
//    single-threaded run completes exactly (lowest-index-wins separator
//    selection makes the parallel root search canonical);
//  * soundness of memoization: enabling/disabling the decomposition cache
//    never changes a completed search's width.
//
// Instances whose single-threaded run exhausts its budget (grid3d_3 on
// slow machines) only get anytime sanity checks — aborted searches report
// schedule-dependent bounds by design.

#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hd/det_k_decomp.h"
#include "hypergraph/parser.h"
#include "td/exact.h"

namespace hypertree {
namespace {

std::string DataPath(const std::string& name) {
  return std::string(HYPERTREE_SOURCE_DIR) + "/data/" + name;
}

const char* kInstances[] = {
    "adder_8.hg",    "bridge_8.hg",  "clique_8.hg",    "grid2d_4.hg",
    "grid3d_3.hg",   "cycle_10_3.hg", "circuit_40.hg", "random_25_30.hg",
    "acyclic_18.hg",
};

Hypergraph Load(const std::string& name) {
  std::string error;
  auto h = ReadHypergraphFile(DataPath(name), &error);
  EXPECT_TRUE(h.has_value()) << name << ": " << error;
  return *h;
}

SearchOptions BudgetedOptions() {
  SearchOptions opts;
  // Generous for the instances that complete (all finish well under a
  // second) while bounding the one known budget-buster (grid3d_3).
  opts.time_limit_seconds = 2.0;
  opts.max_nodes = 200000;
  opts.seed = 1;
  return opts;
}

void ExpectSameDecomposition(const HypertreeDecomposition& a,
                             const HypertreeDecomposition& b,
                             const std::string& name) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes()) << name;
  for (int p = 0; p < a.NumNodes(); ++p) {
    EXPECT_EQ(a.Chi(p), b.Chi(p)) << name << " chi of node " << p;
    EXPECT_EQ(a.Lambda(p), b.Lambda(p)) << name << " lambda of node " << p;
    EXPECT_EQ(a.Parent(p), b.Parent(p)) << name << " parent of node " << p;
  }
}

TEST(SearchAccelerationTest, HypertreeWidthIsThreadCountInvariant) {
  for (const char* name : kInstances) {
    Hypergraph h = Load(name);

    SearchOptions opts1 = BudgetedOptions();
    opts1.threads = 1;
    std::optional<HypertreeDecomposition> hd1;
    WidthResult r1 = HypertreeWidth(h, opts1, &hd1);

    SearchOptions opts8 = BudgetedOptions();
    opts8.threads = 8;
    std::optional<HypertreeDecomposition> hd8;
    WidthResult r8 = HypertreeWidth(h, opts8, &hd8);

    if (!r1.exact) {
      // Aborted searches only promise anytime-valid bounds.
      EXPECT_GE(r1.upper_bound, r1.lower_bound) << name;
      EXPECT_GE(r8.upper_bound, r8.lower_bound) << name;
      continue;
    }
    EXPECT_TRUE(r8.exact) << name;
    EXPECT_EQ(r8.upper_bound, r1.upper_bound) << name;
    EXPECT_EQ(r8.lower_bound, r1.lower_bound) << name;
    ASSERT_TRUE(hd1.has_value()) << name;
    ASSERT_TRUE(hd8.has_value()) << name;
    std::string why;
    EXPECT_TRUE(hd1->IsValidFor(h, &why)) << name << ": " << why;
    ExpectSameDecomposition(*hd1, *hd8, name);
  }
}

TEST(SearchAccelerationTest, CacheAblationPreservesWidths) {
  for (const char* name : kInstances) {
    Hypergraph h = Load(name);

    SearchOptions with = BudgetedOptions();
    with.threads = 1;
    with.use_decomp_cache = true;
    WidthResult on = HypertreeWidth(h, with, nullptr);

    SearchOptions without = BudgetedOptions();
    without.threads = 1;
    without.use_decomp_cache = false;
    WidthResult off = HypertreeWidth(h, without, nullptr);

    if (!on.exact || !off.exact) {
      EXPECT_GE(on.upper_bound, on.lower_bound) << name;
      EXPECT_GE(off.upper_bound, off.lower_bound) << name;
      continue;
    }
    EXPECT_EQ(on.upper_bound, off.upper_bound) << name;
    EXPECT_EQ(on.lower_bound, off.lower_bound) << name;
    // The memo table must actually be exercised somewhere in the sweep.
    EXPECT_GT(on.cache_stats.inserts + on.cache_stats.misses, 0) << name;
    EXPECT_EQ(off.cache_stats.inserts, 0) << name;
  }
}

}  // namespace
}  // namespace hypertree
