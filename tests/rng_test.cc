#include "util/rng.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace hypertree {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Rng a2(123), c2(124);
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a2.Next() != c2.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    int v = rng.UniformInt(10);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 10);
    ++counts[v];
  }
  // Every bucket should be hit a reasonable number of times.
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformRange(3, 5);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 5);
    lo_seen |= v == 3;
    hi_seen |= v == 5;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(13);
  for (int n : {1, 2, 10, 100}) {
    std::vector<int> p = rng.Permutation(n);
    std::vector<int> sorted = p;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST(RngTest, GaussianRoughlyCentered) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) sum += rng.Gaussian();
  EXPECT_NEAR(sum / 10000.0, 0.0, 0.1);
}

}  // namespace
}  // namespace hypertree
