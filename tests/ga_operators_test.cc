#include <algorithm>

#include <gtest/gtest.h>

#include "ga/crossover.h"
#include "ga/mutation.h"
#include "ordering/ordering.h"

namespace hypertree {
namespace {

bool IsPermutation(const std::vector<int>& p) {
  return IsValidOrdering(p, static_cast<int>(p.size()));
}

// Property sweep: every crossover operator must map permutations to
// permutations, for all sizes and seeds.
class CrossoverPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CrossoverPropertyTest, OffspringAreValidPermutations) {
  auto [op_index, seed] = GetParam();
  CrossoverOp op = kAllCrossovers[op_index];
  Rng rng(seed);
  for (int n : {1, 2, 3, 5, 8, 20, 57}) {
    std::vector<int> p1 = rng.Permutation(n);
    std::vector<int> p2 = rng.Permutation(n);
    std::vector<int> c1, c2;
    Crossover(op, p1, p2, &rng, &c1, &c2);
    EXPECT_TRUE(IsPermutation(c1))
        << CrossoverName(op) << " child1 invalid, n=" << n;
    EXPECT_TRUE(IsPermutation(c2))
        << CrossoverName(op) << " child2 invalid, n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpsAndSeeds, CrossoverPropertyTest,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Range(0, 6)));

class MutationPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MutationPropertyTest, MutantsAreValidPermutations) {
  auto [op_index, seed] = GetParam();
  MutationOp op = kAllMutations[op_index];
  Rng rng(seed);
  for (int n : {1, 2, 3, 5, 8, 20, 57}) {
    std::vector<int> p = rng.Permutation(n);
    for (int rep = 0; rep < 10; ++rep) {
      Mutate(op, &p, &rng);
      ASSERT_TRUE(IsPermutation(p))
          << MutationName(op) << " broke the permutation, n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpsAndSeeds, MutationPropertyTest,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Range(0, 6)));

TEST(CrossoverTest, IdenticalParentsReproduceForSegmentOps) {
  Rng rng(5);
  std::vector<int> p = rng.Permutation(12);
  for (CrossoverOp op : kAllCrossovers) {
    std::vector<int> c1, c2;
    Crossover(op, p, p, &rng, &c1, &c2);
    EXPECT_EQ(c1, p) << CrossoverName(op);
    EXPECT_EQ(c2, p) << CrossoverName(op);
  }
}

TEST(CrossoverTest, CxPreservesPositions) {
  // Every gene of a CX child occupies the same position as in one of the
  // parents.
  Rng rng(6);
  std::vector<int> p1 = rng.Permutation(15);
  std::vector<int> p2 = rng.Permutation(15);
  std::vector<int> c1, c2;
  Crossover(CrossoverOp::kCx, p1, p2, &rng, &c1, &c2);
  for (int i = 0; i < 15; ++i) {
    EXPECT_TRUE(c1[i] == p1[i] || c1[i] == p2[i]) << "position " << i;
    EXPECT_TRUE(c2[i] == p1[i] || c2[i] == p2[i]) << "position " << i;
  }
}

TEST(MutationTest, EmPreservesAllButTwo) {
  Rng rng(7);
  std::vector<int> p = rng.Permutation(20);
  std::vector<int> before = p;
  Mutate(MutationOp::kEm, &p, &rng);
  int changed = 0;
  for (int i = 0; i < 20; ++i) {
    if (p[i] != before[i]) ++changed;
  }
  EXPECT_TRUE(changed == 0 || changed == 2);
}

TEST(MutationTest, NamesAreUnique) {
  std::vector<std::string> names;
  for (MutationOp op : kAllMutations) names.push_back(MutationName(op));
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) == names.end());
  std::vector<std::string> xnames;
  for (CrossoverOp op : kAllCrossovers) xnames.push_back(CrossoverName(op));
  std::sort(xnames.begin(), xnames.end());
  EXPECT_TRUE(std::adjacent_find(xnames.begin(), xnames.end()) ==
              xnames.end());
}

}  // namespace
}  // namespace hypertree
