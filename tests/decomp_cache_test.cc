#include "search/decomp_cache.h"

#include <memory>

#include <gtest/gtest.h>

#include "util/bitset.h"

namespace hypertree {
namespace {

Bitset Bits(int size, std::initializer_list<int> bits) {
  Bitset b(size);
  for (int i : bits) b.Set(i);
  return b;
}

TEST(DecompCacheTest, LookupOnEmptyCacheIsUnknown) {
  DecompCache cache;
  EXPECT_EQ(cache.Lookup(Bits(8, {0, 1}), Bits(8, {2}), 2),
            DecompCache::Outcome::kUnknown);
  DecompCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.inserts, 0);
}

TEST(DecompCacheTest, NegativeEntryRoundTrips) {
  DecompCache cache;
  Bitset comp = Bits(8, {0, 1, 2});
  Bitset conn = Bits(8, {3});
  cache.InsertNegative(comp, conn, 2);
  EXPECT_EQ(cache.Lookup(comp, conn, 2), DecompCache::Outcome::kNegative);
  // A different k, connector or component is a distinct subproblem.
  EXPECT_EQ(cache.Lookup(comp, conn, 3), DecompCache::Outcome::kUnknown);
  EXPECT_EQ(cache.Lookup(comp, Bits(8, {4}), 2),
            DecompCache::Outcome::kUnknown);
  EXPECT_EQ(cache.Lookup(Bits(8, {0, 1}), conn, 2),
            DecompCache::Outcome::kUnknown);
}

TEST(DecompCacheTest, PositiveEntryReturnsWitness) {
  DecompCache cache;
  Bitset comp = Bits(10, {4, 5, 6});
  Bitset conn = Bits(10, {1, 2});
  auto subtree = std::make_shared<CachedSubtree>();
  subtree->chi.push_back(Bits(10, {1, 2, 4}));
  subtree->lambda.push_back({0, 3});
  subtree->parent.push_back(-1);
  cache.InsertPositive(comp, conn, 3, subtree);

  std::shared_ptr<const CachedSubtree> got;
  EXPECT_EQ(cache.Lookup(comp, conn, 3, &got),
            DecompCache::Outcome::kPositive);
  ASSERT_NE(got, nullptr);
  ASSERT_EQ(got->chi.size(), 1u);
  EXPECT_EQ(got->chi[0], Bits(10, {1, 2, 4}));
  EXPECT_EQ(got->lambda[0], (std::vector<int>{0, 3}));
  EXPECT_EQ(got->parent[0], -1);
}

TEST(DecompCacheTest, StatsCountHitsMissesInserts) {
  DecompCache cache;
  Bitset comp = Bits(8, {0});
  Bitset conn = Bits(8, {1});
  cache.Lookup(comp, conn, 1);    // miss
  cache.InsertNegative(comp, conn, 1);  // insert
  cache.Lookup(comp, conn, 1);    // hit
  cache.Lookup(comp, conn, 1);    // hit
  DecompCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.inserts, 1);
  EXPECT_EQ(s.hits, 2);
}

TEST(DecompCacheTest, DominatedOrInsertSemantics) {
  DecompCache cache;
  Bitset state = Bits(16, {3, 7, 11});
  // First visit: records value 3, not dominated.
  EXPECT_FALSE(cache.DominatedOrInsert(state, 3));
  // Revisit with equal or worse value: dominated.
  EXPECT_TRUE(cache.DominatedOrInsert(state, 3));
  EXPECT_TRUE(cache.DominatedOrInsert(state, 5));
  // Revisit with a better value: not dominated, entry is improved.
  EXPECT_FALSE(cache.DominatedOrInsert(state, 2));
  EXPECT_TRUE(cache.DominatedOrInsert(state, 2));
  // A different state is independent.
  EXPECT_FALSE(cache.DominatedOrInsert(Bits(16, {3, 7}), 3));
}

TEST(DecompCacheTest, DominatedStrictNeverInserts) {
  DecompCache cache;
  Bitset state = Bits(16, {1, 2});
  EXPECT_FALSE(cache.DominatedStrict(state, 4));  // unknown state
  EXPECT_FALSE(cache.DominatedOrInsert(state, 3));
  EXPECT_FALSE(cache.DominatedStrict(state, 3));  // equal is not strict
  EXPECT_TRUE(cache.DominatedStrict(state, 4));
  EXPECT_FALSE(cache.DominatedStrict(state, 2));
}

TEST(DecompCacheTest, TranspositionAndDetkKeysDoNotCollide) {
  DecompCache cache;
  Bitset state = Bits(8, {0, 1});
  EXPECT_FALSE(cache.DominatedOrInsert(state, 1));
  // A det-k lookup on the same component bits is a separate key space.
  EXPECT_EQ(cache.Lookup(state, Bitset(), 1), DecompCache::Outcome::kUnknown);
}

TEST(DecompCacheTest, ClearDropsEntriesKeepsCounters) {
  DecompCache cache;
  Bitset comp = Bits(8, {0, 1});
  Bitset conn = Bits(8, {2});
  cache.InsertNegative(comp, conn, 2);
  EXPECT_EQ(cache.Lookup(comp, conn, 2), DecompCache::Outcome::kNegative);
  long inserts_before = cache.stats().inserts;
  cache.Clear();
  EXPECT_EQ(cache.Lookup(comp, conn, 2), DecompCache::Outcome::kUnknown);
  EXPECT_EQ(cache.stats().inserts, inserts_before);
}

TEST(DecompCacheTest, SingleShardStillWorks) {
  DecompCache cache(1);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(cache.DominatedOrInsert(Bits(8, {i}), i));
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(cache.DominatedOrInsert(Bits(8, {i}), i));
  }
}

}  // namespace
}  // namespace hypertree
