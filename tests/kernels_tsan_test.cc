// Concurrency regression for the batched kernel backend: many threads
// issue batched ops against ONE shared IncidenceIndex row arena at the
// same time. The arena is read-only and every output buffer is private,
// so under ThreadSanitizer (scripts/run_tsan_checks.sh) this proves the
// batched backend's internal worker pool and wave bookkeeping are free
// of data races; in any build it checks results stay bit-identical to
// the scalar oracle under contention.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "hypergraph/incidence_index.h"
#include "kernels/kernels.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace hypertree {
namespace {

using kernels::Backend;
using kernels::GetOps;
using kernels::Ops;
using kernels::PaddedWords;

// Large enough that ScoreRows / MaxIntersect cross the batched backend's
// sharding thresholds (1200 rows x 64 words > kMinWordsToShard), so the
// worker pool actually runs waves instead of delegating to the SIMD
// table.
constexpr int kVertices = 4096;
constexpr int kEdges = 1200;
constexpr int kThreads = 4;
constexpr int kRoundsPerThread = 8;

Hypergraph SharedInstance() {
  Rng rng(99);
  Hypergraph h(kVertices);
  for (int e = 0; e < kEdges; ++e) {
    std::vector<int> vars;
    for (int i = 0; i < 40; ++i) vars.push_back(rng.UniformInt(kVertices));
    h.AddEdge(vars);
  }
  return h;
}

TEST(KernelsTsan, BatchedWorkersShareOneIndex) {
  Hypergraph h = SharedInstance();
  IncidenceIndex index(h);
  const Ops& batched = GetOps(Backend::kBatched);
  const Ops& scalar = GetOps(Backend::kScalar);
  const int vert_words = index.VertWords();
  const int edge_words = index.EdgeWords();

  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(1000 + t);  // per-thread inputs, shared read-only arena
      std::vector<uint64_t> conn(PaddedWords(vert_words), 0);
      std::vector<uint64_t> emask(PaddedWords(std::max(1, edge_words)), 0);
      std::vector<uint64_t> got(PaddedWords(std::max(1, vert_words)), 0);
      std::vector<uint64_t> want = got;
      std::vector<int> got_counts(kEdges), want_counts(kEdges);
      for (int round = 0; round < kRoundsPerThread; ++round) {
        for (int i = 0; i < vert_words; ++i) conn[i] = rng.Next();
        for (int i = 0; i < edge_words; ++i) emask[i] = rng.Next();
        if (kEdges % 64 != 0)
          emask[edge_words - 1] &= (uint64_t{1} << (kEdges % 64)) - 1;

        batched.OrReduceRows(got.data(), vert_words, index.EdgeVarRows(),
                             index.EdgeVarStride(), emask.data(), edge_words);
        scalar.OrReduceRows(want.data(), vert_words, index.EdgeVarRows(),
                            index.EdgeVarStride(), emask.data(), edge_words);
        if (got != want) ++failures[t];

        batched.ScoreRows(got_counts.data(), index.EdgeVarRows(),
                          index.EdgeVarStride(), nullptr, kEdges, conn.data(),
                          vert_words);
        scalar.ScoreRows(want_counts.data(), index.EdgeVarRows(),
                         index.EdgeVarStride(), nullptr, kEdges, conn.data(),
                         vert_words);
        if (got_counts != want_counts) ++failures[t];

        if (batched.MaxIntersect(index.EdgeVarRows(), index.EdgeVarStride(),
                                 kEdges, conn.data(), vert_words) !=
            scalar.MaxIntersect(index.EdgeVarRows(), index.EdgeVarStride(),
                                kEdges, conn.data(), vert_words)) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(0, failures[t]) << "thread " << t;
  }
  workers.clear();
  failures.assign(kThreads, 0);

  // Join-engine key kernels under the same contention: a shared
  // read-only row buffer, per-thread outputs, batched waves crossing
  // kMinKeysToShard. Collision counts must match scalar exactly — they
  // feed the deterministic relation.probe_collisions totals.
  constexpr int kKeyRows = 50000;
  constexpr int kArity = 4;
  constexpr int kKeyK = 3;
  constexpr int kKeyBits = 9;
  std::vector<int> rows(static_cast<size_t>(kKeyRows) * kArity);
  {
    Rng rng(4242);
    for (int& v : rows) v = static_cast<int>(rng.Next() & 0x1ff);
  }
  const int pos[kKeyK] = {0, 2, 3};
  std::vector<uint64_t> ref_keys(kKeyRows);
  uint64_t ref_mn = 0, ref_mx = 0;
  scalar.PackKeys(ref_keys.data(), rows.data(), kArity, pos, kKeyK, kKeyBits,
                  kKeyRows, &ref_mn, &ref_mx);
  size_t cap = 16;
  while (cap < static_cast<size_t>(kKeyRows)) cap <<= 1;
  const uint64_t mask = cap - 1;
  std::vector<uint64_t> slot_keys(cap, 0);
  std::vector<int32_t> slot_vals(cap, -1);
  int32_t ord = 0;
  for (int r = 0; r < kKeyRows; r += 2) {
    size_t slot = kernels::SplitMix64(ref_keys[r]) & mask;
    while (slot_vals[slot] != -1 && slot_keys[slot] != ref_keys[r]) {
      slot = (slot + 1) & mask;
    }
    if (slot_vals[slot] == -1) {
      slot_vals[slot] = ord++;
      slot_keys[slot] = ref_keys[r];
    }
  }
  std::vector<int32_t> ref_vals(kKeyRows);
  const long ref_coll =
      scalar.ProbeKeys(ref_vals.data(), ref_keys.data(), kKeyRows,
                       slot_keys.data(), slot_vals.data(), mask);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<uint64_t> keys(kKeyRows);
      std::vector<int32_t> vals(kKeyRows);
      for (int round = 0; round < kRoundsPerThread; ++round) {
        uint64_t mn = 0, mx = 0;
        batched.PackKeys(keys.data(), rows.data(), kArity, pos, kKeyK,
                         kKeyBits, kKeyRows, &mn, &mx);
        if (keys != ref_keys || mn != ref_mn || mx != ref_mx) ++failures[t];
        const long coll =
            batched.ProbeKeys(vals.data(), keys.data(), kKeyRows,
                              slot_keys.data(), slot_vals.data(), mask);
        if (vals != ref_vals || coll != ref_coll) ++failures[t];
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(0, failures[t]) << "thread " << t;
  }
}

}  // namespace
}  // namespace hypertree
