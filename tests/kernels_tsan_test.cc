// Concurrency regression for the batched kernel backend: many threads
// issue batched ops against ONE shared IncidenceIndex row arena at the
// same time. The arena is read-only and every output buffer is private,
// so under ThreadSanitizer (scripts/run_tsan_checks.sh) this proves the
// batched backend's internal worker pool and wave bookkeeping are free
// of data races; in any build it checks results stay bit-identical to
// the scalar oracle under contention.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "hypergraph/incidence_index.h"
#include "kernels/kernels.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace hypertree {
namespace {

using kernels::Backend;
using kernels::GetOps;
using kernels::Ops;
using kernels::PaddedWords;

// Large enough that OrReduceRows / ScoreRows cross the batched backend's
// sharding thresholds (rows x words > kMinWordsToShard), so the worker
// pool actually runs waves instead of delegating to the SIMD table.
constexpr int kVertices = 4096;
constexpr int kEdges = 300;
constexpr int kThreads = 4;
constexpr int kRoundsPerThread = 8;

Hypergraph SharedInstance() {
  Rng rng(99);
  Hypergraph h(kVertices);
  for (int e = 0; e < kEdges; ++e) {
    std::vector<int> vars;
    for (int i = 0; i < 40; ++i) vars.push_back(rng.UniformInt(kVertices));
    h.AddEdge(vars);
  }
  return h;
}

TEST(KernelsTsan, BatchedWorkersShareOneIndex) {
  Hypergraph h = SharedInstance();
  IncidenceIndex index(h);
  const Ops& batched = GetOps(Backend::kBatched);
  const Ops& scalar = GetOps(Backend::kScalar);
  const int vert_words = index.VertWords();
  const int edge_words = index.EdgeWords();

  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(1000 + t);  // per-thread inputs, shared read-only arena
      std::vector<uint64_t> conn(PaddedWords(vert_words), 0);
      std::vector<uint64_t> emask(PaddedWords(std::max(1, edge_words)), 0);
      std::vector<uint64_t> got(PaddedWords(std::max(1, vert_words)), 0);
      std::vector<uint64_t> want = got;
      std::vector<int> got_counts(kEdges), want_counts(kEdges);
      for (int round = 0; round < kRoundsPerThread; ++round) {
        for (int i = 0; i < vert_words; ++i) conn[i] = rng.Next();
        for (int i = 0; i < edge_words; ++i) emask[i] = rng.Next();
        if (kEdges % 64 != 0)
          emask[edge_words - 1] &= (uint64_t{1} << (kEdges % 64)) - 1;

        batched.OrReduceRows(got.data(), vert_words, index.EdgeVarRows(),
                             index.EdgeVarStride(), emask.data(), edge_words);
        scalar.OrReduceRows(want.data(), vert_words, index.EdgeVarRows(),
                            index.EdgeVarStride(), emask.data(), edge_words);
        if (got != want) ++failures[t];

        batched.ScoreRows(got_counts.data(), index.EdgeVarRows(),
                          index.EdgeVarStride(), nullptr, kEdges, conn.data(),
                          vert_words);
        scalar.ScoreRows(want_counts.data(), index.EdgeVarRows(),
                         index.EdgeVarStride(), nullptr, kEdges, conn.data(),
                         vert_words);
        if (got_counts != want_counts) ++failures[t];

        if (batched.MaxIntersect(index.EdgeVarRows(), index.EdgeVarStride(),
                                 kEdges, conn.data(), vert_words) !=
            scalar.MaxIntersect(index.EdgeVarRows(), index.EdgeVarStride(),
                                kEdges, conn.data(), vert_words)) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(0, failures[t]) << "thread " << t;
  }
}

}  // namespace
}  // namespace hypertree
