#include "util/flat_map.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "util/bitset.h"
#include "util/rng.h"

namespace hypertree {
namespace {

Bitset RandomKey(int bits, Rng* rng) {
  Bitset b(bits);
  for (int i = 0; i < bits; ++i) {
    if (rng->Bernoulli(0.3)) b.Set(i);
  }
  return b;
}

TEST(BitsetFlatMapTest, FindOnEmpty) {
  BitsetFlatMap<int> m;
  EXPECT_EQ(nullptr, m.Find(Bitset::FromVector(10, {1})));
  EXPECT_EQ(0u, m.size());
}

TEST(BitsetFlatMapTest, TryEmplaceInsertsOnceAndFindsBack) {
  BitsetFlatMap<int> m;
  Bitset k = Bitset::FromVector(70, {0, 64, 69});
  auto [slot, inserted] = m.TryEmplace(k, 7);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(7, *slot);
  auto [slot2, inserted2] = m.TryEmplace(k, 9);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(7, *slot2);  // first value wins, like try_emplace
  ASSERT_NE(nullptr, m.Find(k));
  EXPECT_EQ(7, *m.Find(k));
  EXPECT_EQ(1u, m.size());
}

TEST(BitsetFlatMapTest, RandomizedAgainstUnorderedMap) {
  // Same keys, same values, same hit/miss pattern as the std map it
  // replaces in the search memos — across enough inserts to force
  // several growth rehashes.
  Rng rng(123);
  for (int bits : {17, 64, 130}) {
    BitsetFlatMap<int> m;
    std::unordered_map<Bitset, int> ref;
    for (int op = 0; op < 3000; ++op) {
      Bitset k = RandomKey(bits, &rng);
      if (k.None()) k.Set(rng.UniformInt(bits));
      int v = rng.UniformInt(1000);
      auto [slot, inserted] = m.TryEmplace(k, v);
      auto [it, ref_inserted] = ref.try_emplace(k, v);
      EXPECT_EQ(ref_inserted, inserted);
      EXPECT_EQ(it->second, *slot);
      Bitset probe = RandomKey(bits, &rng);
      const int* hit = m.Find(probe);
      auto ref_hit = ref.find(probe);
      EXPECT_EQ(ref_hit != ref.end(), hit != nullptr);
      if (hit != nullptr) EXPECT_EQ(ref_hit->second, *hit);
    }
    EXPECT_EQ(ref.size(), m.size());
    for (const auto& [k, v] : ref) {
      ASSERT_NE(nullptr, m.Find(k));
      EXPECT_EQ(v, *m.Find(k));
    }
    m.clear();
    EXPECT_EQ(0u, m.size());
    EXPECT_EQ(nullptr, m.Find(RandomKey(bits, &rng)));
  }
}

}  // namespace
}  // namespace hypertree
