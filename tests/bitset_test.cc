#include "util/bitset.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hypertree {
namespace {

TEST(BitsetTest, StartsEmpty) {
  Bitset b(100);
  EXPECT_EQ(b.Count(), 0);
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.Any());
  EXPECT_EQ(b.First(), -1);
}

TEST(BitsetTest, SetResetTest) {
  Bitset b(130);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2);
}

TEST(BitsetTest, SetAllRespectsSize) {
  Bitset b(70);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70);
  b.Clear();
  EXPECT_EQ(b.Count(), 0);
}

TEST(BitsetTest, IterationVisitsAllSetBits) {
  Bitset b(200);
  std::vector<int> expected = {0, 1, 63, 64, 65, 127, 128, 199};
  for (int i : expected) b.Set(i);
  std::vector<int> got;
  for (int i = b.First(); i >= 0; i = b.Next(i)) got.push_back(i);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(b.ToVector(), expected);
}

TEST(BitsetTest, SetAlgebra) {
  Bitset a = Bitset::FromVector(10, {1, 2, 3});
  Bitset b = Bitset::FromVector(10, {3, 4});
  EXPECT_EQ((a | b).ToVector(), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ((a & b).ToVector(), (std::vector<int>{3}));
  EXPECT_EQ((a - b).ToVector(), (std::vector<int>{1, 2}));
}

TEST(BitsetTest, SubsetAndIntersection) {
  Bitset a = Bitset::FromVector(100, {5, 50, 99});
  Bitset b = Bitset::FromVector(100, {5, 20, 50, 99});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(a.IntersectCount(b), 3);
  Bitset c = Bitset::FromVector(100, {1, 2});
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_EQ(a.IntersectCount(c), 0);
}

TEST(BitsetTest, EqualityAndHash) {
  Bitset a = Bitset::FromVector(77, {0, 10, 76});
  Bitset b = Bitset::FromVector(77, {0, 10, 76});
  Bitset c = Bitset::FromVector(77, {0, 10});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.Hash(), b.Hash());
  std::unordered_set<Bitset> set;
  set.insert(a);
  set.insert(b);
  set.insert(c);
  EXPECT_EQ(set.size(), 2u);
}

TEST(BitsetTest, ToString) {
  Bitset a = Bitset::FromVector(10, {1, 5});
  EXPECT_EQ(a.ToString(), "{1, 5}");
  EXPECT_EQ(Bitset(4).ToString(), "{}");
}

TEST(BitsetTest, AssignAndCountMatchesAssignAndPlusCount) {
  Rng rng(11);
  for (int n : {1, 63, 64, 65, 127, 300}) {
    for (int trial = 0; trial < 10; ++trial) {
      Bitset a(n), b(n);
      for (int i = 0; i < n; ++i) {
        if (rng.Bernoulli(0.4)) a.Set(i);
        if (rng.Bernoulli(0.4)) b.Set(i);
      }
      Bitset expect(n);
      expect.AssignAnd(a, b);
      Bitset got(n);
      EXPECT_EQ(expect.Count(), got.AssignAndCount(a, b));
      EXPECT_EQ(expect, got);
    }
  }
}

TEST(BitsetTest, AndNotIsEmptyIsSubsetTest) {
  Rng rng(12);
  for (int n : {1, 64, 65, 300}) {
    for (int trial = 0; trial < 20; ++trial) {
      Bitset a(n), b(n);
      for (int i = 0; i < n; ++i) {
        if (rng.Bernoulli(0.3)) a.Set(i);
        if (rng.Bernoulli(0.6)) b.Set(i);
      }
      EXPECT_EQ(a.IsSubsetOf(b), a.AndNotIsEmpty(b));
      EXPECT_TRUE(Bitset(n).AndNotIsEmpty(b));
    }
  }
}

TEST(BitsetTest, AppendToCollectsAscendingAndAppends) {
  Bitset a = Bitset::FromVector(200, {3, 64, 65, 199});
  std::vector<int> out = {-1};
  a.AppendTo(&out);
  EXPECT_EQ(out, (std::vector<int>{-1, 3, 64, 65, 199}));
  Bitset(50).AppendTo(&out);  // empty set appends nothing
  EXPECT_EQ(out.size(), 5u);
}

TEST(BitsetTest, HeapWordsAre32ByteAligned) {
  // Padded-capacity contract (docs/KERNELS.md): multi-word storage is
  // 32-byte aligned so vector backends can stream whole lanes.
  for (int n : {65, 128, 300, 4096}) {
    Bitset b(n);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(b.Words()) % 32) << n;
  }
}

TEST(BitsetTest, RandomizedAgainstReference) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    int n = 1 + rng.UniformInt(300);
    Bitset b(n);
    std::unordered_set<int> ref;
    for (int op = 0; op < 200; ++op) {
      int i = rng.UniformInt(n);
      if (rng.Bernoulli(0.5)) {
        b.Set(i);
        ref.insert(i);
      } else {
        b.Reset(i);
        ref.erase(i);
      }
    }
    EXPECT_EQ(b.Count(), static_cast<int>(ref.size()));
    for (int i = 0; i < n; ++i) EXPECT_EQ(b.Test(i), ref.count(i) > 0);
  }
}

}  // namespace
}  // namespace hypertree
