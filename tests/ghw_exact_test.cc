#include <gtest/gtest.h>

#include "bounds/ghw_lower_bounds.h"
#include "ghd/astar.h"
#include "ghd/branch_and_bound.h"
#include "ghd/ghw_from_ordering.h"
#include "hypergraph/generators.h"
#include "util/rng.h"

namespace hypertree {
namespace {

TEST(GhwExactTest, KnownFamilies) {
  // Acyclic: ghw 1.
  {
    Hypergraph h = RandomAcyclicHypergraph(10, 4, 1);
    WidthResult bb = BranchAndBoundGhw(h);
    EXPECT_TRUE(bb.exact);
    EXPECT_EQ(bb.upper_bound, 1);
  }
  // Binary cycle: ghw 2.
  {
    Hypergraph h = CycleHypergraph(8, 2);
    WidthResult bb = BranchAndBoundGhw(h);
    EXPECT_TRUE(bb.exact);
    EXPECT_EQ(bb.upper_bound, 2);
  }
  // clique_6 (binary edges on K6): ghw = 3 (ceil(6/2)).
  {
    Hypergraph h = CliqueHypergraph(6);
    WidthResult bb = BranchAndBoundGhw(h);
    EXPECT_TRUE(bb.exact);
    EXPECT_EQ(bb.upper_bound, 3);
  }
}

TEST(GhwExactTest, BbAndAStarAgree) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Hypergraph h = RandomHypergraph(9, 8, 2, 4, seed * 17);
    WidthResult bb = BranchAndBoundGhw(h);
    WidthResult as = AStarGhw(h);
    ASSERT_TRUE(bb.exact) << "seed " << seed;
    ASSERT_TRUE(as.exact) << "seed " << seed;
    EXPECT_EQ(bb.upper_bound, as.upper_bound) << "seed " << seed;
  }
}

TEST(GhwExactTest, WitnessOrderingAchievesWidth) {
  Hypergraph h = Grid2DHypergraph(3);
  WidthResult bb = BranchAndBoundGhw(h);
  ASSERT_TRUE(bb.exact);
  GhwEvaluator eval(h);
  EXPECT_EQ(eval.EvaluateOrdering(bb.best_ordering, CoverMode::kExact),
            bb.upper_bound);
  WidthResult as = AStarGhw(h);
  ASSERT_TRUE(as.exact);
  EXPECT_EQ(eval.EvaluateOrdering(as.best_ordering, CoverMode::kExact),
            as.upper_bound);
  EXPECT_EQ(bb.upper_bound, as.upper_bound);
}

TEST(GhwExactTest, AdderBlocksAreWidthTwo) {
  // The gate-level adder family has ghw 2 (the thesis' best upper bounds
  // for adder_* are 2).
  Hypergraph h = AdderHypergraph(3);
  WidthResult bb = BranchAndBoundGhw(h);
  ASSERT_TRUE(bb.exact);
  EXPECT_EQ(bb.upper_bound, 2);
}

TEST(GhwExactTest, GreedyCoverAblationNeverBetter) {
  // With greedy covers the search loses the exactness guarantee and can
  // only report a width >= the true ghw.
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Hypergraph h = RandomHypergraph(9, 8, 2, 4, seed * 23 + 7);
    GhwSearchOptions greedy;
    greedy.cover_mode = CoverMode::kGreedy;
    WidthResult g = BranchAndBoundGhw(h, greedy);
    WidthResult e = BranchAndBoundGhw(h);
    ASSERT_TRUE(e.exact);
    EXPECT_FALSE(g.exact);
    EXPECT_GE(g.upper_bound, e.upper_bound) << "seed " << seed;
  }
}

TEST(GhwExactTest, GreedyModeAStarBoundsAreSound) {
  // With greedy covers the search's g-values overestimate costs; the
  // reported lower bound must still be valid (fall back to the static
  // bound, never the inflated f-values).
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Hypergraph h = RandomHypergraph(9, 8, 2, 4, seed * 47 + 13);
    WidthResult truth = BranchAndBoundGhw(h);
    ASSERT_TRUE(truth.exact);
    GhwSearchOptions greedy;
    greedy.cover_mode = CoverMode::kGreedy;
    WidthResult as = AStarGhw(h, greedy);
    EXPECT_LE(as.lower_bound, truth.upper_bound) << "seed " << seed;
    EXPECT_GE(as.upper_bound, truth.upper_bound) << "seed " << seed;
  }
}

TEST(GhwExactTest, BudgetedRunReturnsBounds) {
  Hypergraph h = Grid2DHypergraph(5);
  GhwSearchOptions opts;
  opts.max_nodes = 20;
  WidthResult bb = BranchAndBoundGhw(h, opts);
  EXPECT_LE(bb.lower_bound, bb.upper_bound);
  WidthResult as = AStarGhw(h, opts);
  EXPECT_LE(as.lower_bound, as.upper_bound);
}

TEST(GhwExactTest, LowerBoundNeverExceedsExactWidth) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Hypergraph h = RandomHypergraph(8, 7, 2, 4, seed + 31);
    WidthResult bb = BranchAndBoundGhw(h);
    ASSERT_TRUE(bb.exact);
    Rng rng(seed);
    EXPECT_LE(GhwLowerBound(h, &rng), bb.upper_bound) << "seed " << seed;
  }
}

}  // namespace
}  // namespace hypertree
