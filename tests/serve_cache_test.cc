#include "serve/cache_store.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "ghd/ghw_from_ordering.h"
#include "hypergraph/generators.h"
#include "io/ghd_format.h"
#include "ordering/heuristics.h"
#include "search/decomp_cache.h"
#include "serve/instance_hash.h"
#include "util/rng.h"

namespace hypertree {
namespace {

using serve::CanonicalWitnessText;
using serve::GhdFromSubtree;
using serve::NormalizeInstance;
using serve::PackMeta;
using serve::PersistentCacheStore;
using serve::StoredWitness;
using serve::SubtreeFromGhd;
using serve::UnpackMeta;
using serve::WitnessMeta;

GeneralizedHypertreeDecomposition MakeGhd(const Hypergraph& h,
                                          uint64_t seed) {
  GhwEvaluator eval(h);
  Rng rng(seed);
  return eval.BuildGhd(MinFillOrdering(eval.primal(), &rng),
                       CoverMode::kExact);
}

TEST(ServeCacheTest, MetaPackRoundTrip) {
  for (int width : {0, 1, 7, 1000}) {
    for (int lower : {0, 1, width}) {
      for (bool exact : {false, true}) {
        WitnessMeta meta{width, lower, exact};
        WitnessMeta back = UnpackMeta(PackMeta(meta));
        EXPECT_EQ(back.width, width);
        EXPECT_EQ(back.lower_bound, lower);
        EXPECT_EQ(back.exact, exact);
      }
    }
  }
}

TEST(ServeCacheTest, SubtreeRoundTripIsByteIdentical) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Hypergraph h = RandomHypergraph(16, 18, 2, 4, seed);
    auto norm = NormalizeInstance(h);
    GeneralizedHypertreeDecomposition ghd = MakeGhd(norm.hypergraph, seed);
    CachedSubtree subtree = SubtreeFromGhd(ghd);
    std::string text = CanonicalWitnessText(subtree, norm.hypergraph);

    // Reconstructed GHD is valid and equally wide.
    GeneralizedHypertreeDecomposition back = GhdFromSubtree(subtree);
    std::string why;
    EXPECT_TRUE(back.IsValidFor(norm.hypergraph, &why)) << why;
    EXPECT_EQ(back.Width(), ghd.Width());

    // text -> ReadGhd -> SubtreeFromGhd -> text is a fixed point: this
    // is the property that makes memory hits, disk hits and cold solves
    // answer byte-identical witnesses.
    auto parsed = ReadGhdFromString(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(CanonicalWitnessText(SubtreeFromGhd(*parsed), norm.hypergraph),
              text);
  }
}

TEST(ServeCacheTest, DecompCacheInstanceEntries) {
  DecompCache cache(4);
  Hypergraph h = RandomHypergraph(12, 14, 2, 4, 3);
  auto norm = NormalizeInstance(h);
  auto subtree = std::make_shared<CachedSubtree>(
      SubtreeFromGhd(MakeGhd(norm.hypergraph, 3)));

  EXPECT_EQ(cache.LookupInstance(norm.key_bits),
            DecompCache::Outcome::kUnknown);
  EXPECT_EQ(cache.NumEntries(), size_t{0});

  WitnessMeta meta{3, 3, true};
  cache.InsertInstance(norm.key_bits, PackMeta(meta), subtree);
  int packed = 0;
  std::shared_ptr<const CachedSubtree> got;
  EXPECT_EQ(cache.LookupInstance(norm.key_bits, &packed, &got),
            DecompCache::Outcome::kPositive);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got.get(), subtree.get());
  EXPECT_EQ(UnpackMeta(packed).width, 3);

  // First write wins: a second insert under the same key is ignored.
  auto other = std::make_shared<CachedSubtree>(*subtree);
  cache.InsertInstance(norm.key_bits, PackMeta({9, 9, true}), other);
  cache.LookupInstance(norm.key_bits, &packed, &got);
  EXPECT_EQ(got.get(), subtree.get());
  EXPECT_EQ(UnpackMeta(packed).width, 3);

  // Shard accounting: one entry total, spread over 4 shards.
  EXPECT_EQ(cache.NumEntries(), size_t{1});
  EXPECT_EQ(cache.num_shards(), 4);
  size_t total = 0;
  for (size_t count : cache.ShardEntryCounts()) total += count;
  EXPECT_EQ(total, size_t{1});

  // The instance keyspace (k = -2) does not collide with det-k or
  // transposition entries for the same bitset.
  EXPECT_FALSE(cache.DominatedOrInsert(norm.key_bits, 5));
  EXPECT_EQ(cache.Lookup(norm.key_bits, Bitset(), 1),
            DecompCache::Outcome::kUnknown);
  EXPECT_EQ(cache.NumEntries(), size_t{2});
}

class PersistentStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "serve_cache_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    h_ = RandomHypergraph(14, 16, 2, 4, 5);
    norm_ = NormalizeInstance(h_);
    witness_.witness_text = CanonicalWitnessText(
        SubtreeFromGhd(MakeGhd(norm_.hypergraph, 5)), norm_.hypergraph);
    witness_.meta = {3, 3, true};
    witness_.vertices = norm_.hypergraph.NumVertices();
    witness_.edges = norm_.hypergraph.NumEdges();
    witness_.solver = "portfolio";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  Hypergraph h_;
  serve::NormalizedInstance norm_;
  StoredWitness witness_;
};

TEST_F(PersistentStoreTest, StoreThenLoadRoundTrips) {
  PersistentCacheStore store(dir_);
  ASSERT_TRUE(store.enabled());
  std::string error;
  ASSERT_TRUE(store.Store(norm_.key, norm_.canonical_text, witness_, &error))
      << error;
  auto loaded = store.Load(norm_.key, norm_.canonical_text, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->witness_text, witness_.witness_text);
  EXPECT_EQ(loaded->meta.width, 3);
  EXPECT_EQ(loaded->meta.lower_bound, 3);
  EXPECT_TRUE(loaded->meta.exact);
  EXPECT_EQ(loaded->vertices, witness_.vertices);
  EXPECT_EQ(loaded->edges, witness_.edges);
  EXPECT_EQ(loaded->solver, "portfolio");
}

TEST_F(PersistentStoreTest, MissAndDisabledStore) {
  PersistentCacheStore store(dir_);
  EXPECT_FALSE(store.Load(norm_.key, norm_.canonical_text).has_value());

  PersistentCacheStore disabled("");
  EXPECT_FALSE(disabled.enabled());
  EXPECT_TRUE(disabled.Store(norm_.key, norm_.canonical_text, witness_));
  EXPECT_FALSE(disabled.Load(norm_.key, norm_.canonical_text).has_value());
}

TEST_F(PersistentStoreTest, InstanceTextMismatchIsAMiss) {
  PersistentCacheStore store(dir_);
  ASSERT_TRUE(store.Store(norm_.key, norm_.canonical_text, witness_));
  // Same key, different canonical text: a (simulated) hash collision
  // must not answer with the other instance's witness.
  std::string error;
  EXPECT_FALSE(
      store.Load(norm_.key, norm_.canonical_text + "x", &error).has_value());
  EXPECT_NE(error.find("mismatch"), std::string::npos) << error;
}

TEST_F(PersistentStoreTest, CapEvictsLeastRecentlyUsedAcrossRestarts) {
  // Three instances; C is much smaller than A and B so that {A, C} fits
  // a cap sized to hold {A, B}.
  auto make_entry = [](const Hypergraph& h, uint64_t seed) {
    serve::NormalizedInstance norm = NormalizeInstance(h);
    StoredWitness w;
    w.witness_text = CanonicalWitnessText(
        SubtreeFromGhd(MakeGhd(norm.hypergraph, seed)), norm.hypergraph);
    w.meta = {2, 1, true};
    w.vertices = norm.hypergraph.NumVertices();
    w.edges = norm.hypergraph.NumEdges();
    w.solver = "portfolio";
    return std::make_pair(norm, w);
  };
  auto [a, wa] = make_entry(RandomHypergraph(14, 16, 2, 4, 7), 7);
  auto [b, wb] = make_entry(RandomHypergraph(14, 16, 2, 4, 8), 8);
  auto [c, wc] = make_entry(RandomHypergraph(6, 6, 2, 3, 9), 9);

  // First server life: uncapped writes of A then B.
  {
    PersistentCacheStore store(dir_);
    ASSERT_TRUE(store.Store(a.key, a.canonical_text, wa));
    ASSERT_TRUE(store.Store(b.key, b.canonical_text, wb));
  }
  // Make the on-disk LRU order unambiguous even on coarse-mtime
  // filesystems: A's recency stamp is hours older than B's.
  const auto now = std::filesystem::file_time_type::clock::now();
  auto meta_path = [&](const serve::NormalizedInstance& n) {
    return dir_ + "/" + n.key.substr(0, 2) + "/" + n.key + ".json";
  };
  std::filesystem::last_write_time(meta_path(a), now - std::chrono::hours(4));
  std::filesystem::last_write_time(meta_path(b), now - std::chrono::hours(2));

  // "Restart" with a cap that holds {A, B} exactly: the capped store
  // must account for entries written before it existed.
  const long long cap = PersistentCacheStore(dir_).DiskUsageBytes();
  PersistentCacheStore store(dir_, cap);
  EXPECT_EQ(store.max_bytes(), cap);

  // A hit on A bumps its recency past B's pre-restart stamp.
  ASSERT_TRUE(store.Load(a.key, a.canonical_text).has_value());

  // Storing C exceeds the cap; B — now the least recently used — must
  // be evicted, while the touched A and the fresh C survive.
  ASSERT_TRUE(store.Store(c.key, c.canonical_text, wc));
  EXPECT_LE(store.DiskUsageBytes(), cap);
  EXPECT_FALSE(store.Load(b.key, b.canonical_text).has_value());
  EXPECT_TRUE(store.Load(a.key, a.canonical_text).has_value());
  EXPECT_TRUE(store.Load(c.key, c.canonical_text).has_value());

  // A cap too small for anything still keeps the just-stored entry: the
  // eviction pass never deletes its own write.
  PersistentCacheStore tiny(dir_, 1);
  ASSERT_TRUE(tiny.Store(b.key, b.canonical_text, wb));
  EXPECT_TRUE(tiny.Load(b.key, b.canonical_text).has_value());
  EXPECT_FALSE(tiny.Load(a.key, a.canonical_text).has_value());
  EXPECT_FALSE(tiny.Load(c.key, c.canonical_text).has_value());
}

TEST_F(PersistentStoreTest, CorruptEntriesAreMisses) {
  PersistentCacheStore store(dir_);
  ASSERT_TRUE(store.Store(norm_.key, norm_.canonical_text, witness_));
  const std::string base = dir_ + "/" + norm_.key.substr(0, 2) + "/" +
                           norm_.key;
  {
    // Truncated witness file: meta verifies but the GHD no longer parses.
    std::ofstream out(base + ".ghd", std::ios::trunc);
    out << witness_.witness_text.substr(0, witness_.witness_text.size() / 2);
  }
  std::string error;
  EXPECT_FALSE(store.Load(norm_.key, norm_.canonical_text, &error).has_value());
  {
    // Unparsable meta JSON.
    std::ofstream out(base + ".json", std::ios::trunc);
    out << "{not json";
  }
  EXPECT_FALSE(store.Load(norm_.key, norm_.canonical_text, &error).has_value());
  EXPECT_NE(error.find("corrupt"), std::string::npos) << error;
}

}  // namespace
}  // namespace hypertree
