#include "ordering/ordering.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "ordering/bucket_elimination.h"
#include "util/rng.h"

namespace hypertree {
namespace {

TEST(OrderingTest, Validity) {
  EXPECT_TRUE(IsValidOrdering({2, 0, 1}, 3));
  EXPECT_FALSE(IsValidOrdering({0, 0, 1}, 3));
  EXPECT_FALSE(IsValidOrdering({0, 1}, 3));
  EXPECT_FALSE(IsValidOrdering({0, 1, 3}, 3));
  EXPECT_TRUE(IsValidOrdering({}, 0));
}

TEST(OrderingTest, Positions) {
  std::vector<int> pos = OrderingPositions({2, 0, 1});
  EXPECT_EQ(pos[2], 0);
  EXPECT_EQ(pos[0], 1);
  EXPECT_EQ(pos[1], 2);
}

TEST(BucketEliminationTest, PathGraphWidthOne) {
  Graph g = PathGraph(5);
  EliminationOrdering sigma = {0, 1, 2, 3, 4};
  EliminationTree t = BucketEliminate(g, sigma);
  EXPECT_EQ(t.width, 1);
  // Bag of the first eliminated vertex (position 4) is {3, 4}.
  EXPECT_EQ(t.bags[4].ToVector(), (std::vector<int>{3, 4}));
  EXPECT_EQ(t.parent[4], 3);
}

TEST(BucketEliminationTest, BadOrderingOnStar) {
  // Eliminating the star center first creates a clique of the leaves.
  Graph g(5);
  for (int leaf = 1; leaf < 5; ++leaf) g.AddEdge(0, leaf);
  EliminationTree bad = BucketEliminate(g, {1, 2, 3, 4, 0});
  EXPECT_EQ(bad.width, 4);
  EliminationTree good = BucketEliminate(g, {0, 1, 2, 3, 4});
  EXPECT_EQ(good.width, 1);
}

TEST(BucketEliminationTest, ThesisFigure211) {
  // Hypergraph of Figure 2.11: primal edges of hyperedges {x1,x2,x3},
  // {x1,x5,x6}, {x3,x4,x5}; ordering sigma = (x6, x5, x4, x3, x2, x1)
  // eliminates x1 first. Vertex ids: x1=0 ... x6=5.
  Graph g(6);
  int tri1[] = {0, 1, 2}, tri2[] = {0, 4, 5}, tri3[] = {2, 3, 4};
  for (auto tri : {tri1, tri2, tri3}) {
    g.AddEdge(tri[0], tri[1]);
    g.AddEdge(tri[0], tri[2]);
    g.AddEdge(tri[1], tri[2]);
  }
  EliminationOrdering sigma = {5, 4, 3, 2, 1, 0};
  EliminationTree t = BucketEliminate(g, sigma);
  // x1 is eliminated first: bag = {x1} + neighbors {x2, x3, x5, x6}.
  EXPECT_EQ(t.bags[0].ToVector(), (std::vector<int>{0, 1, 2, 4, 5}));
  // Figure 2.11(b): the widest bag has 5 vertices (width 4).
  EXPECT_EQ(t.width, 4);
}

TEST(BucketEliminationTest, ParentsPointToLaterEliminated) {
  Graph g = GridGraph(3, 3);
  Rng rng(3);
  EliminationOrdering sigma = rng.Permutation(9);
  EliminationTree t = BucketEliminate(g, sigma);
  std::vector<int> pos = OrderingPositions(sigma);
  for (int v = 0; v < 9; ++v) {
    if (t.parent[v] != -1) {
      EXPECT_LT(pos[t.parent[v]], pos[v]);
      EXPECT_TRUE(t.bags[v].Test(t.parent[v]));
    }
  }
}

}  // namespace
}  // namespace hypertree
