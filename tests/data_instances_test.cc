// The shipped benchmark instances under data/ must parse, be structurally
// sound (every vertex covered), and have the widths their family
// guarantees.

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "ghd/branch_and_bound.h"
#include "graph/dimacs.h"
#include "hypergraph/acyclicity.h"
#include "hypergraph/parser.h"
#include "td/pace.h"

namespace hypertree {
namespace {

std::string DataPath(const std::string& name) {
  return std::string(HYPERTREE_SOURCE_DIR) + "/data/" + name;
}

TEST(DataInstancesTest, AllHypergraphsParse) {
  const char* files[] = {
      "adder_8.hg",   "bridge_8.hg",  "clique_8.hg",
      "grid2d_4.hg",  "grid3d_3.hg",  "cycle_10_3.hg",
      "circuit_40.hg", "random_25_30.hg", "acyclic_18.hg",
  };
  for (const char* f : files) {
    std::string error;
    auto h = ReadHypergraphFile(DataPath(f), &error);
    ASSERT_TRUE(h.has_value()) << f << ": " << error;
    EXPECT_GT(h->NumVertices(), 0) << f;
    EXPECT_GT(h->NumEdges(), 0) << f;
    // Every vertex in at least one edge (solvers rely on it).
    for (int v = 0; v < h->NumVertices(); ++v) {
      EXPECT_GE(h->VertexDegree(v), 1) << f << " vertex " << v;
    }
  }
}

TEST(DataInstancesTest, KnownWidths) {
  {
    auto h = ReadHypergraphFile(DataPath("adder_8.hg"));
    ASSERT_TRUE(h.has_value());
    GhwSearchOptions opts;
    opts.time_limit_seconds = 10.0;
    WidthResult ghw = BranchAndBoundGhw(*h, opts);
    if (ghw.exact) {
      EXPECT_EQ(ghw.upper_bound, 2);
    }
    EXPECT_GE(ghw.upper_bound, 2);
  }
  {
    auto h = ReadHypergraphFile(DataPath("acyclic_18.hg"));
    ASSERT_TRUE(h.has_value());
    EXPECT_TRUE(IsAlphaAcyclic(*h));
    WidthResult ghw = BranchAndBoundGhw(*h);
    ASSERT_TRUE(ghw.exact);
    EXPECT_EQ(ghw.upper_bound, 1);
  }
  {
    auto h = ReadHypergraphFile(DataPath("clique_8.hg"));
    ASSERT_TRUE(h.has_value());
    WidthResult ghw = BranchAndBoundGhw(*h);
    ASSERT_TRUE(ghw.exact);
    EXPECT_EQ(ghw.upper_bound, 4);  // ceil(8/2)
  }
}

TEST(DataInstancesTest, GraphFormatsParse) {
  {
    std::string error;
    auto g = ReadDimacsGraphFile(DataPath("queen5_5.col"), &error);
    ASSERT_TRUE(g.has_value()) << error;
    EXPECT_EQ(g->NumVertices(), 25);
    EXPECT_EQ(g->NumEdges(), 160);
  }
  {
    std::string error;
    auto g = ReadDimacsGraphFile(DataPath("myciel4.col"), &error);
    ASSERT_TRUE(g.has_value()) << error;
    EXPECT_EQ(g->NumVertices(), 23);
    EXPECT_EQ(g->NumEdges(), 71);
  }
  {
    std::ifstream in(DataPath("grid5.gr"));
    ASSERT_TRUE(in.good());
    std::string error;
    auto g = ReadPaceGraph(in, &error);
    ASSERT_TRUE(g.has_value()) << error;
    EXPECT_EQ(g->NumVertices(), 25);
    EXPECT_EQ(g->NumEdges(), 40);
  }
}

}  // namespace
}  // namespace hypertree
