// Property tests for the flat-storage relation kernel: randomized
// equivalence against naive reference implementations of join, semijoin
// and projection, edge cases (empty schemas, no shared variables, empty
// relations), in-place semijoin order preservation, index-backed
// membership, and a collision-rate regression test for the splitmix64
// row hashing.

#include "csp/relation.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hypertree {
namespace {

using Tuples = std::vector<std::vector<int>>;

Relation Make(std::vector<int> schema, Tuples tuples) {
  Relation r(std::move(schema));
  for (const auto& t : tuples) r.AddTuple(t);
  return r;
}

Tuples Sorted(const Relation& r) {
  Tuples t = r.ToTuples();
  std::sort(t.begin(), t.end());
  return t;
}

// ---------------------------------------------------------------------------
// Naive reference implementations (tuple-of-vectors semantics).

std::vector<std::pair<int, int>> SharedPositions(const Relation& a,
                                                 const Relation& b) {
  std::vector<std::pair<int, int>> shared;
  for (int i = 0; i < a.Arity(); ++i) {
    int j = b.IndexOf(a.schema()[i]);
    if (j >= 0) shared.push_back({i, j});
  }
  return shared;
}

bool Agree(const std::vector<int>& ta, const std::vector<int>& tb,
           const std::vector<std::pair<int, int>>& shared) {
  for (auto [i, j] : shared) {
    if (ta[i] != tb[j]) return false;
  }
  return true;
}

Relation NaiveJoin(const Relation& a, const Relation& b) {
  std::vector<int> schema = a.schema();
  std::vector<int> extra;
  for (int i = 0; i < b.Arity(); ++i) {
    if (a.IndexOf(b.schema()[i]) < 0) {
      schema.push_back(b.schema()[i]);
      extra.push_back(i);
    }
  }
  auto shared = SharedPositions(a, b);
  Relation out(schema);
  for (const auto& ta : a.ToTuples()) {
    for (const auto& tb : b.ToTuples()) {
      if (!Agree(ta, tb, shared)) continue;
      std::vector<int> t = ta;
      for (int i : extra) t.push_back(tb[i]);
      out.AddTuple(t);
    }
  }
  return out;
}

Relation NaiveSemijoin(const Relation& a, const Relation& b) {
  auto shared = SharedPositions(a, b);
  Relation out(a.schema());
  for (const auto& ta : a.ToTuples()) {
    for (const auto& tb : b.ToTuples()) {
      if (Agree(ta, tb, shared)) {
        out.AddTuple(ta);
        break;
      }
    }
  }
  return out;
}

Relation NaiveProject(const Relation& a, const std::vector<int>& vars) {
  Relation out(vars);
  std::set<std::vector<int>> seen;
  for (const auto& ta : a.ToTuples()) {
    std::vector<int> t;
    for (int v : vars) t.push_back(ta[a.IndexOf(v)]);
    if (seen.insert(t).second) out.AddTuple(t);
  }
  return out;
}

// Random relation: arity in [0, max_arity], schema drawn from `universe`
// variables (so overlap between two relations varies from full to none),
// values in [0, domain).
Relation RandomRelation(Rng* rng, int universe, int max_arity, int max_rows,
                        int domain) {
  int arity = rng->UniformInt(max_arity + 1);
  std::vector<int> pool(universe);
  for (int i = 0; i < universe; ++i) pool[i] = i;
  for (int i = 0; i < arity; ++i) {
    std::swap(pool[i], pool[i + rng->UniformInt(universe - i)]);
  }
  pool.resize(arity);
  Relation r(pool);
  int rows = rng->UniformInt(max_rows + 1);
  if (arity == 0) rows = std::min(rows, 1);  // set semantics: at most {()}
  std::vector<int> t(arity);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < arity; ++j) t[j] = rng->UniformInt(domain);
    r.InsertIfAbsent(t.data());
  }
  return r;
}

// ---------------------------------------------------------------------------

class KernelPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KernelPropertyTest, JoinSemijoinProjectMatchNaive) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  for (int iter = 0; iter < 30; ++iter) {
    Relation a = RandomRelation(&rng, 6, 4, 24, 4);
    Relation b = RandomRelation(&rng, 6, 4, 24, 4);

    EXPECT_EQ(Sorted(a.Join(b)), Sorted(NaiveJoin(a, b)));
    EXPECT_EQ(a.Join(b).schema(), NaiveJoin(a, b).schema());

    EXPECT_EQ(Sorted(a.Semijoin(b)), Sorted(NaiveSemijoin(a, b)));

    // Projection onto a random subset of a's schema.
    std::vector<int> vars = a.schema();
    for (size_t k = vars.size(); k > 0; --k) {
      if (rng.UniformInt(2) == 0) vars.erase(vars.begin() + (k - 1));
    }
    EXPECT_EQ(Sorted(a.Project(vars)), Sorted(NaiveProject(a, vars)));
  }
}

TEST_P(KernelPropertyTest, SemijoinInPlaceMatchesCopyAndPreservesOrder) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 5);
  for (int iter = 0; iter < 30; ++iter) {
    Relation a = RandomRelation(&rng, 6, 4, 24, 4);
    Relation b = RandomRelation(&rng, 6, 4, 24, 4);
    Relation copy = a.Semijoin(b);
    Relation in_place = a;
    in_place.SemijoinInPlace(b);
    // Exact row order, not just set equality: in-place compaction must
    // keep surviving rows in their original order.
    EXPECT_EQ(in_place.ToTuples(), copy.ToTuples());
    EXPECT_EQ(in_place.schema(), a.schema());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelPropertyTest, ::testing::Range(0, 8));

TEST(KernelEdgeCaseTest, EmptySchemaIdentityAndZero) {
  Relation id(std::vector<int>{});  // {()}: join/semijoin identity
  id.AddTuple({});
  Relation zero(std::vector<int>{});  // {}: annihilates
  Relation r = Make({0, 1}, {{1, 2}, {3, 4}});

  EXPECT_EQ(Sorted(r.Join(id)), Sorted(r));
  EXPECT_EQ(Sorted(id.Join(r)), Sorted(r));
  EXPECT_TRUE(r.Join(zero).Empty());
  EXPECT_EQ(r.Semijoin(id).Size(), 2);
  EXPECT_TRUE(r.Semijoin(zero).Empty());
  EXPECT_EQ(id.Join(id).Size(), 1);
  EXPECT_TRUE(id.Contains({}));
  EXPECT_FALSE(zero.Contains({}));
  // Projecting away everything: nonempty input yields {()}.
  EXPECT_EQ(r.Project({}).Size(), 1);
  EXPECT_TRUE(zero.Project({}).Empty());
}

TEST(KernelEdgeCaseTest, NoSharedVariables) {
  Relation r = Make({0, 1}, {{1, 2}, {3, 4}});
  Relation s = Make({2}, {{7}, {8}, {9}});
  Relation empty_s(std::vector<int>{2});

  EXPECT_EQ(r.Join(s).Size(), 6);  // cross product
  EXPECT_EQ(Sorted(r.Join(s)), Sorted(NaiveJoin(r, s)));
  EXPECT_EQ(r.Semijoin(s).Size(), 2);  // other nonempty: keep all
  EXPECT_TRUE(r.Semijoin(empty_s).Empty());
  Relation in_place = r;
  in_place.SemijoinInPlace(empty_s);
  EXPECT_TRUE(in_place.Empty());
}

TEST(KernelEdgeCaseTest, EmptyRelationsPropagate) {
  Relation empty(std::vector<int>{0, 1});
  Relation r = Make({1, 2}, {{1, 2}});
  EXPECT_TRUE(empty.Join(r).Empty());
  EXPECT_TRUE(r.Join(empty).Empty());
  EXPECT_TRUE(empty.Semijoin(r).Empty());
  EXPECT_TRUE(r.Semijoin(empty).Empty());
  EXPECT_TRUE(empty.Project({0}).Empty());
}

TEST(KernelIndexTest, InsertIfAbsentInterleavedWithContains) {
  Rng rng(42);
  Relation r(std::vector<int>{0, 1, 2});
  std::set<std::vector<int>> reference;
  for (int i = 0; i < 2000; ++i) {
    std::vector<int> t = {rng.UniformInt(9), rng.UniformInt(9),
                          rng.UniformInt(9)};
    bool fresh = reference.insert(t).second;
    EXPECT_EQ(r.InsertIfAbsent(t.data()), fresh);
    EXPECT_TRUE(r.ContainsRow(t.data()));
  }
  EXPECT_EQ(r.Size(), static_cast<int>(reference.size()));
  for (int i = 0; i < 200; ++i) {
    std::vector<int> t = {rng.UniformInt(12), rng.UniformInt(12),
                          rng.UniformInt(12)};
    EXPECT_EQ(r.Contains(t), reference.count(t) > 0);
  }
}

TEST(KernelIndexTest, IndexSurvivesMutationMix) {
  // Contains (builds the index), then AddTuple (must keep it fresh),
  // then SemijoinInPlace (must invalidate it), then Contains again.
  Relation r = Make({0, 1}, {{1, 1}, {2, 2}});
  EXPECT_TRUE(r.Contains({1, 1}));
  r.AddTuple({3, 3});
  EXPECT_TRUE(r.Contains({3, 3}));
  Relation filter = Make({0}, {{2}, {3}});
  r.SemijoinInPlace(filter);
  EXPECT_FALSE(r.Contains({1, 1}));
  EXPECT_TRUE(r.Contains({2, 2}));
  EXPECT_TRUE(r.Contains({3, 3}));
  EXPECT_EQ(r.Size(), 2);
}

// Regression test for the old additive mixing (h = h * P + (x + c)), which
// collided dense small-domain pairs: (a+1, b) and (a, b+P) style patterns
// hashed equal, degrading joins to quadratic chains. splitmix64 per
// element keeps all dense pairs distinct.
TEST(HashQualityTest, DensePairsHaveNoFullHashCollisions) {
  constexpr int kDomain = 48;
  std::set<uint64_t> hashes;
  int row[2];
  for (int a = 0; a < kDomain; ++a) {
    for (int b = 0; b < kDomain; ++b) {
      row[0] = a;
      row[1] = b;
      hashes.insert(HashRowValues(row, 2));
    }
  }
  EXPECT_EQ(hashes.size(), static_cast<size_t>(kDomain) * kDomain);
}

TEST(HashQualityTest, LowBitsSpreadAcrossBuckets) {
  // Bucketed collision rate: 2304 dense pairs into 4096 buckets (the
  // power-of-two table the kernel uses) must stay near the birthday
  // bound, not collapse onto a few chains.
  constexpr int kDomain = 48;
  constexpr uint64_t kMask = 4095;
  std::vector<int> bucket(kMask + 1, 0);
  int row[2];
  int collisions = 0;
  for (int a = 0; a < kDomain; ++a) {
    for (int b = 0; b < kDomain; ++b) {
      row[0] = a;
      row[1] = b;
      collisions += bucket[HashRowValues(row, 2) & kMask]++;
    }
  }
  // Expected collisions for 2304 random keys in 4096 buckets ~= 590.
  // The old additive mixing produced tens of thousands here.
  EXPECT_LT(collisions, 1200);
}

TEST(HashQualityTest, KeyPositionsMatchContiguousValues) {
  // HashRowKey over identity positions must agree with HashRowValues so
  // build and probe sides of a join can hash different layouts.
  int row[4] = {5, -3, 0, 1000000};
  int pos[4] = {0, 1, 2, 3};
  EXPECT_EQ(HashRowKey(row, pos, 4), HashRowValues(row, 4));
  int swapped[2] = {1, 0};
  int pair[2] = {7, 9};
  int rpair[2] = {9, 7};
  EXPECT_EQ(HashRowKey(pair, swapped, 2), HashRowValues(rpair, 2));
}

}  // namespace
}  // namespace hypertree
