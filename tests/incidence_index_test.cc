#include "hypergraph/incidence_index.h"

#include <gtest/gtest.h>

#include <vector>

#include "hypergraph/generators.h"
#include "hypergraph/hypergraph.h"
#include "util/bitset.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hypertree {
namespace {

// Random subset of [0, bits) where each element is kept with probability
// num/den.
Bitset RandomSubset(int bits, Rng* rng, uint64_t num, uint64_t den) {
  Bitset s(bits);
  for (int i = 0; i < bits; ++i) {
    if (rng->Next() % den < num) s.Set(i);
  }
  return s;
}

std::vector<Hypergraph> TestInstances() {
  std::vector<Hypergraph> out;
  out.push_back(Hypergraph(0));
  {
    Hypergraph h(4);  // two disconnected binary edges
    h.AddEdge({0, 1});
    h.AddEdge({2, 3});
    out.push_back(std::move(h));
  }
  {
    Hypergraph h(3);  // triangle
    h.AddEdge({0, 1});
    h.AddEdge({1, 2});
    h.AddEdge({0, 2});
    out.push_back(std::move(h));
  }
  out.push_back(AdderHypergraph(4));
  out.push_back(BridgeHypergraph(3));
  out.push_back(Grid2DHypergraph(4));
  out.push_back(CircuitHypergraph(4, 12, 7));
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    out.push_back(RandomHypergraph(24, 18, 2, 5, seed));
    out.push_back(RandomHypergraph(70, 40, 2, 8, seed + 100));
  }
  return out;
}

TEST(IncidenceIndexTest, RowsMatchDirectScan) {
  for (const Hypergraph& h : TestInstances()) {
    IncidenceIndex index(h);
    ASSERT_EQ(index.NumVertices(), h.NumVertices());
    ASSERT_EQ(index.NumEdges(), h.NumEdges());
    for (int v = 0; v < h.NumVertices(); ++v) {
      Bitset expect(h.NumEdges());
      for (int e = 0; e < h.NumEdges(); ++e) {
        if (h.EdgeBits(e).Test(v)) expect.Set(e);
      }
      EXPECT_EQ(index.VertexEdges(v), expect) << "vertex " << v;
    }
    for (int e = 0; e < h.NumEdges(); ++e) {
      Bitset expect(h.NumEdges());
      for (int f = 0; f < h.NumEdges(); ++f) {
        if (h.EdgeBits(e).Intersects(h.EdgeBits(f))) expect.Set(f);
      }
      EXPECT_EQ(index.EdgeNeighbors(e), expect) << "edge " << e;
    }
  }
}

TEST(IncidenceIndexTest, EdgesTouchingMatchesDirectScan) {
  Rng rng(11);
  for (const Hypergraph& h : TestInstances()) {
    IncidenceIndex index(h);
    Bitset out(h.NumEdges());
    for (int round = 0; round < 16; ++round) {
      Bitset vars = RandomSubset(h.NumVertices(), &rng, 1, 3);
      index.EdgesTouching(vars, &out);
      Bitset expect(h.NumEdges());
      for (int e = 0; e < h.NumEdges(); ++e) {
        if (h.EdgeBits(e).Intersects(vars)) expect.Set(e);
      }
      EXPECT_EQ(out, expect);
    }
  }
}

// The word-parallel splitter must produce exactly the naive fixed-point
// components, in the same deterministic order (ascending lowest edge id).
TEST(IncidenceIndexTest, SplitMatchesNaiveComponents) {
  Rng rng(23);
  for (const Hypergraph& h : TestInstances()) {
    IncidenceIndex index(h);
    ComponentSplitter splitter(&index);
    splitter.Attach(&index);
    std::vector<Bitset> got;
    for (int round = 0; round < 24; ++round) {
      Bitset comp = RandomSubset(h.NumEdges(), &rng, 3, 4);
      if (round == 0) comp.SetAll();  // full edge set, empty separator
      Bitset sep_vars = round == 0
                            ? Bitset(h.NumVertices())
                            : RandomSubset(h.NumVertices(), &rng, 1, 3);
      int ncomps = splitter.Split(comp, sep_vars, &got, 0);
      std::vector<Bitset> expect = NaiveComponents(h, comp, sep_vars);
      ASSERT_EQ(ncomps, static_cast<int>(expect.size()));
      for (int i = 0; i < ncomps; ++i) {
        EXPECT_EQ(got[i], expect[i]) << "component " << i;
      }
    }
  }
}

// Split() writes into caller slots starting at out_base and must leave
// lower slots untouched (det-k reuses one comps vector per depth frame).
TEST(IncidenceIndexTest, SplitRespectsOutBaseAndReusesSlots) {
  Hypergraph h = RandomHypergraph(30, 20, 2, 5, 5);
  IncidenceIndex index(h);
  ComponentSplitter splitter(&index);
  Rng rng(31);
  Bitset comp = RandomSubset(h.NumEdges(), &rng, 3, 4);
  Bitset sep_vars = RandomSubset(h.NumVertices(), &rng, 1, 4);
  std::vector<Bitset> out;
  Bitset sentinel(h.NumEdges());
  sentinel.Set(0);
  out.push_back(sentinel);
  int ncomps = splitter.Split(comp, sep_vars, &out, 1);
  EXPECT_EQ(out[0], sentinel);
  std::vector<Bitset> expect = NaiveComponents(h, comp, sep_vars);
  ASSERT_EQ(ncomps, static_cast<int>(expect.size()));
  for (int i = 0; i < ncomps; ++i) EXPECT_EQ(out[1 + i], expect[i]);
  // Second call reuses the now-existing slots.
  int again = splitter.Split(comp, sep_vars, &out, 1);
  EXPECT_EQ(again, ncomps);
  for (int i = 0; i < ncomps; ++i) EXPECT_EQ(out[1 + i], expect[i]);
}

TEST(IncidenceIndexTest, SortedCandidatesMatchesNaive) {
  Rng rng(47);
  for (const Hypergraph& h : TestInstances()) {
    IncidenceIndex index(h);
    CandidateGenerator gen(&index);
    gen.Attach(&index);
    std::vector<int> got;
    for (int round = 0; round < 24; ++round) {
      Bitset conn = RandomSubset(h.NumVertices(), &rng, 1, 4);
      Bitset scope = RandomSubset(h.NumVertices(), &rng, 2, 3);
      scope |= conn;  // det-k invariant: conn is part of the scope
      gen.SortedCandidates(conn, scope, &got);
      std::vector<int> expect = NaiveCandidates(h, conn, scope);
      EXPECT_EQ(got, expect);
    }
  }
}

// One immutable index shared read-only across pool threads, each worker
// owning its splitter/generator scratch. Run under TSan in CI: any write
// to shared index state is a reported race.
TEST(IncidenceIndexTest, SharedIndexAcrossThreads) {
  Hypergraph h = RandomHypergraph(60, 40, 2, 6, 9);
  IncidenceIndex index(h);
  constexpr int kThreads = 4;
  std::vector<int> failures(kThreads, 0);
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([&h, &index, &failures, t] {
        Rng rng(1000 + t);
        ComponentSplitter splitter(&index);
        CandidateGenerator gen(&index);
        std::vector<Bitset> comps;
        std::vector<int> cands;
        for (int round = 0; round < 40; ++round) {
          Bitset comp = RandomSubset(h.NumEdges(), &rng, 3, 4);
          Bitset sep_vars = RandomSubset(h.NumVertices(), &rng, 1, 3);
          int ncomps = splitter.Split(comp, sep_vars, &comps, 0);
          std::vector<Bitset> expect = NaiveComponents(h, comp, sep_vars);
          if (ncomps != static_cast<int>(expect.size())) {
            ++failures[t];
            continue;
          }
          for (int i = 0; i < ncomps; ++i) {
            if (comps[i] != expect[i]) ++failures[t];
          }
          Bitset conn = RandomSubset(h.NumVertices(), &rng, 1, 4);
          Bitset scope = RandomSubset(h.NumVertices(), &rng, 2, 3);
          scope |= conn;
          gen.SortedCandidates(conn, scope, &cands);
          if (cands != NaiveCandidates(h, conn, scope)) ++failures[t];
        }
      });
    }
    pool.Wait();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace hypertree
