#include "hypergraph/acyclicity.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "hypergraph/generators.h"
#include "hypergraph/parser.h"

namespace hypertree {
namespace {

TEST(AcyclicityTest, SingleEdgeIsAcyclic) {
  Hypergraph h(3);
  h.AddEdge({0, 1, 2});
  EXPECT_TRUE(IsAlphaAcyclic(h));
}

TEST(AcyclicityTest, TriangleOfBinaryEdgesIsCyclic) {
  Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({0, 2});
  EXPECT_FALSE(IsAlphaAcyclic(h));
  EXPECT_FALSE(BuildJoinTree(h).has_value());
}

TEST(AcyclicityTest, TriangleCoveredByBigEdgeIsAcyclic) {
  // Alpha-acyclicity is not hereditary: adding the covering edge {0,1,2}
  // makes the triangle acyclic.
  Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({0, 2});
  h.AddEdge({0, 1, 2});
  EXPECT_TRUE(IsAlphaAcyclic(h));
  auto jt = BuildJoinTree(h);
  ASSERT_TRUE(jt.has_value());
  EXPECT_TRUE(ValidateJoinTree(h, *jt));
}

TEST(AcyclicityTest, PathOfEdgesIsAcyclic) {
  Hypergraph h(5);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({2, 3});
  h.AddEdge({3, 4});
  EXPECT_TRUE(IsAlphaAcyclic(h));
  auto jt = BuildJoinTree(h);
  ASSERT_TRUE(jt.has_value());
  EXPECT_TRUE(ValidateJoinTree(h, *jt));
}

TEST(AcyclicityTest, ThesisFigure23JoinTree) {
  // Figure 2.3 hypergraph (classic acyclic example).
  auto h = ReadHypergraphFromString(
      "e1(A,B,C), e2(B,C,D), e3(B,E), e4(D,F), e5(E,F,G).");
  ASSERT_TRUE(h.has_value());
  // That hypergraph is cyclic (B-E-G-F-D loop through binary-ish edges);
  // check GYO classifies consistently with a join-tree attempt.
  EXPECT_EQ(IsAlphaAcyclic(*h), BuildJoinTree(*h).has_value());
}

TEST(AcyclicityTest, GridIsCyclic) {
  EXPECT_FALSE(IsAlphaAcyclic(Grid2DHypergraph(3)));
}

TEST(AcyclicityTest, DisconnectedAcyclic) {
  Hypergraph h(6);
  h.AddEdge({0, 1, 2});
  h.AddEdge({3, 4});
  h.AddEdge({4, 5});
  EXPECT_TRUE(IsAlphaAcyclic(h));
  auto jt = BuildJoinTree(h);
  ASSERT_TRUE(jt.has_value());
  EXPECT_TRUE(ValidateJoinTree(h, *jt));
}

TEST(AcyclicityTest, DuplicateEdges) {
  Hypergraph h(3);
  h.AddEdge({0, 1, 2});
  h.AddEdge({0, 1, 2});
  h.AddEdge({1, 2});
  EXPECT_TRUE(IsAlphaAcyclic(h));
  auto jt = BuildJoinTree(h);
  ASSERT_TRUE(jt.has_value());
  EXPECT_TRUE(ValidateJoinTree(h, *jt));
}

TEST(AcyclicityTest, RandomAcyclicFamilyValidates) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Hypergraph h = RandomAcyclicHypergraph(30, 5, seed);
    ASSERT_TRUE(IsAlphaAcyclic(h)) << "seed " << seed;
    auto jt = BuildJoinTree(h);
    ASSERT_TRUE(jt.has_value()) << "seed " << seed;
    EXPECT_TRUE(ValidateJoinTree(h, *jt)) << "seed " << seed;
  }
}

TEST(AcyclicityTest, CyclesOfAllLengthsAreCyclic) {
  for (int len = 3; len <= 8; ++len) {
    Hypergraph h = HypergraphFromGraph(CycleGraph(len));
    EXPECT_FALSE(IsAlphaAcyclic(h)) << "cycle length " << len;
  }
}

TEST(AcyclicityTest, EmptyHypergraph) {
  Hypergraph h(0);
  EXPECT_TRUE(IsAlphaAcyclic(h));
  auto jt = BuildJoinTree(h);
  ASSERT_TRUE(jt.has_value());
  EXPECT_TRUE(ValidateJoinTree(h, *jt));
}

}  // namespace
}  // namespace hypertree
