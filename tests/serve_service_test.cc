#include "serve/server.h"

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>
#include <unistd.h>

#include "hypergraph/generators.h"
#include "hypergraph/parser.h"
#include "serve/protocol.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace hypertree {
namespace {

using serve::DecompositionService;
using serve::ServerOptions;

std::string InstanceText(const Hypergraph& h) {
  std::ostringstream out;
  WriteHypergraph(h, out);
  return out.str();
}

Json DecomposeRequest(const std::string& instance) {
  Json request = Json::Object();
  request.Set("op", "decompose");
  request.Set("instance", instance);
  return request;
}

std::string Field(const Json& response, const std::string& name) {
  const Json* value = response.Find(name);
  return value != nullptr ? value->AsString() : "";
}

TEST(ServeServiceTest, SolvedThenMemoryThenDiskAnswerIdenticalWitnesses) {
  const std::string dir =
      ::testing::TempDir() + "serve_service_test_two_level";
  std::filesystem::remove_all(dir);
  const std::string instance =
      InstanceText(RandomHypergraph(18, 22, 2, 4, 17));
  CancellationToken cancel;

  ServerOptions options;
  options.cache_dir = dir;
  DecompositionService service(options);

  Json cold = service.Handle(DecomposeRequest(instance), cancel);
  ASSERT_EQ(Field(cold, "status"), "ok") << cold.Dump();
  EXPECT_EQ(Field(cold, "source"), "solved");
  const std::string witness = Field(cold, "witness");
  ASSERT_FALSE(witness.empty());

  Json warm = service.Handle(DecomposeRequest(instance), cancel);
  EXPECT_EQ(Field(warm, "source"), "memory");
  EXPECT_EQ(Field(warm, "witness"), witness);
  EXPECT_EQ(Field(warm, "key"), Field(cold, "key"));

  // A fresh service over the same directory: disk hit, same bytes, and
  // the hit is promoted so a repeat answers from memory.
  DecompositionService restarted(options);
  Json disk = restarted.Handle(DecomposeRequest(instance), cancel);
  EXPECT_EQ(Field(disk, "source"), "disk");
  EXPECT_EQ(Field(disk, "witness"), witness);
  Json promoted = restarted.Handle(DecomposeRequest(instance), cancel);
  EXPECT_EQ(Field(promoted, "source"), "memory");
  EXPECT_EQ(Field(promoted, "witness"), witness);

  std::filesystem::remove_all(dir);
}

TEST(ServeServiceTest, RenamedInstanceHitsTheSameEntry) {
  Hypergraph h = RandomHypergraph(16, 20, 2, 4, 23);
  // Reverse vertex ids and edge order: same structure, different text.
  const int n = h.NumVertices();
  Hypergraph renamed(n);
  for (int e = h.NumEdges() - 1; e >= 0; --e) {
    std::vector<int> members;
    for (int v : h.EdgeVertices(e)) members.push_back(n - 1 - v);
    std::string name = "r";
    name += std::to_string(e);
    renamed.AddEdge(members, std::move(name));
  }
  CancellationToken cancel;
  DecompositionService service(ServerOptions{});
  Json first = service.Handle(DecomposeRequest(InstanceText(h)), cancel);
  ASSERT_EQ(Field(first, "status"), "ok");
  Json second =
      service.Handle(DecomposeRequest(InstanceText(renamed)), cancel);
  EXPECT_EQ(Field(second, "source"), "memory");
  EXPECT_EQ(Field(second, "key"), Field(first, "key"));
  EXPECT_EQ(Field(second, "witness"), Field(first, "witness"));
}

TEST(ServeServiceTest, CancelledSolveReturnsCleanTimeout) {
  // A pre-cancelled token: the portfolio race returns right away with
  // its (unproven) prologue bounds and the response degrades to a clean
  // "timeout" — never a crash, never a cached wrong answer.
  const std::string instance =
      InstanceText(RandomHypergraph(60, 80, 3, 6, 31));
  CancellationToken cancelled;
  cancelled.Cancel();
  DecompositionService service(ServerOptions{});
  Json response = service.Handle(DecomposeRequest(instance), cancelled);
  ASSERT_EQ(Field(response, "status"), "timeout") << response.Dump();
  EXPECT_EQ(Field(response, "source"), "solved");
  const Json* exact = response.Find("exact");
  ASSERT_NE(exact, nullptr);
  EXPECT_FALSE(exact->AsBool(true));
  // Anytime bounds are still reported.
  EXPECT_GE(response.Find("width")->AsInt(), 1);
  EXPECT_GE(response.Find("lower_bound")->AsInt(), 1);
  // Unproven results are not cached: a retry solves again.
  CancellationToken live;
  Json retry = service.Handle(DecomposeRequest(instance), live);
  EXPECT_EQ(Field(retry, "source"), "solved");
}

TEST(ServeServiceTest, MalformedRequestsGetErrorResponses) {
  CancellationToken cancel;
  DecompositionService service(ServerOptions{});

  Json no_op = Json::Object();
  EXPECT_EQ(Field(service.Handle(no_op, cancel), "status"), "error");

  Json bad_op = Json::Object();
  bad_op.Set("op", "frobnicate");
  EXPECT_EQ(Field(service.Handle(bad_op, cancel), "status"), "error");

  Json no_instance = Json::Object();
  no_instance.Set("op", "decompose");
  EXPECT_EQ(Field(service.Handle(no_instance, cancel), "status"), "error");

  Json bad_instance = Json::Object();
  bad_instance.Set("op", "decompose");
  bad_instance.Set("instance", "e1(v1,v2");
  EXPECT_EQ(Field(service.Handle(bad_instance, cancel), "status"), "error");

  Json ping = Json::Object();
  ping.Set("op", "ping");
  EXPECT_EQ(Field(service.Handle(ping, cancel), "status"), "ok");
}

TEST(ServeServiceTest, StatsReportShardOccupancy) {
  CancellationToken cancel;
  ServerOptions options;
  options.mem_shards = 8;
  DecompositionService service(options);
  Json stats_request = Json::Object();
  stats_request.Set("op", "stats");

  Json before = service.Handle(stats_request, cancel);
  EXPECT_EQ(before.Find("mem_entries")->AsInt(), 0);
  EXPECT_EQ(before.Find("mem_shards")->AsInt(), 8);
  EXPECT_EQ(before.Find("shard_entries")->items().size(), size_t{8});

  service.Handle(
      DecomposeRequest(InstanceText(RandomHypergraph(14, 16, 2, 4, 41))),
      cancel);
  Json after = service.Handle(stats_request, cancel);
  EXPECT_EQ(after.Find("mem_entries")->AsInt(), 1);
  long total = 0;
  for (const Json& count : after.Find("shard_entries")->items()) {
    total += count.AsInt();
  }
  EXPECT_EQ(total, 1);
}

TEST(ServeServiceTest, EndToEndOverSocket) {
  ServerOptions options;
  options.port = 0;
  options.metrics_path = ::testing::TempDir() + "serve_e2e_metrics.ndjson";
  std::filesystem::remove(options.metrics_path);
  std::string error;
  int bound_port = 0;
  int listen_fd = serve::ListenLoopback(0, &bound_port, &error);
  ASSERT_GE(listen_fd, 0) << error;

  DecompositionService service(options);
  CancellationToken stop;
  std::thread server([&] {
    serve::ServeLoop(listen_fd, service, options, stop);
  });

  auto roundtrip = [&](const Json& request) {
    int fd = serve::ConnectLoopback(bound_port, &error);
    EXPECT_GE(fd, 0) << error;
    std::string body;
    EXPECT_TRUE(serve::WriteFrame(fd, request.Dump(), &error)) << error;
    EXPECT_EQ(serve::ReadFrame(fd, &body, &error), 1) << error;
    ::close(fd);
    std::optional<Json> response = Json::Parse(body, &error);
    EXPECT_TRUE(response.has_value()) << error;
    return response.value_or(Json());
  };

  Json ping = Json::Object();
  ping.Set("op", "ping");
  EXPECT_EQ(Field(roundtrip(ping), "status"), "ok");

  const std::string instance =
      InstanceText(RandomHypergraph(15, 18, 2, 4, 47));
  Json cold = roundtrip(DecomposeRequest(instance));
  EXPECT_EQ(Field(cold, "source"), "solved");
  Json warm = roundtrip(DecomposeRequest(instance));
  EXPECT_EQ(Field(warm, "source"), "memory");
  EXPECT_EQ(Field(warm, "witness"), Field(cold, "witness"));

  Json shutdown = Json::Object();
  shutdown.Set("op", "shutdown");
  EXPECT_EQ(Field(roundtrip(shutdown), "status"), "ok");
  server.join();
  ::close(listen_fd);

  // The metrics file carries one NDJSON record per request.
  std::ifstream metrics(options.metrics_path);
  ASSERT_TRUE(metrics.good());
  int lines = 0;
  std::string line;
  while (std::getline(metrics, line)) {
    std::optional<Json> record = Json::Parse(line, &error);
    ASSERT_TRUE(record.has_value()) << error << ": " << line;
    EXPECT_NE(record->Find("status"), nullptr);
    ++lines;
  }
  EXPECT_EQ(lines, 4);
  std::filesystem::remove(options.metrics_path);
}

}  // namespace
}  // namespace hypertree
