#include "graph/dimacs.h"

#include <sstream>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace hypertree {
namespace {

TEST(DimacsTest, ParseBasic) {
  std::istringstream in(
      "c a comment\n"
      "p edge 4 3\n"
      "e 1 2\n"
      "e 2 3\n"
      "e 3 4\n");
  std::string error;
  auto g = ReadDimacsGraph(in, &error);
  ASSERT_TRUE(g.has_value()) << error;
  EXPECT_EQ(g->NumVertices(), 4);
  EXPECT_EQ(g->NumEdges(), 3);
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_TRUE(g->HasEdge(2, 3));
}

TEST(DimacsTest, DuplicateEdgesCollapse) {
  std::istringstream in("p edge 3 2\ne 1 2\ne 2 1\n");
  auto g = ReadDimacsGraph(in);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumEdges(), 1);
}

TEST(DimacsTest, RejectsEdgeBeforeProblemLine) {
  std::istringstream in("e 1 2\n");
  std::string error;
  EXPECT_FALSE(ReadDimacsGraph(in, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(DimacsTest, RejectsOutOfRangeVertex) {
  std::istringstream in("p edge 2 1\ne 1 5\n");
  std::string error;
  EXPECT_FALSE(ReadDimacsGraph(in, &error).has_value());
}

TEST(DimacsTest, RejectsMissingProblemLine) {
  std::istringstream in("c only comments\n");
  std::string error;
  EXPECT_FALSE(ReadDimacsGraph(in, &error).has_value());
}

TEST(DimacsTest, RoundTrip) {
  Graph g = QueensGraph(4);
  std::ostringstream out;
  WriteDimacsGraph(g, out);
  std::istringstream in(out.str());
  auto back = ReadDimacsGraph(in);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->NumVertices(), g.NumVertices());
  EXPECT_EQ(back->Edges(), g.Edges());
}

}  // namespace
}  // namespace hypertree
