#include "ga/saiga.h"

#include <gtest/gtest.h>

#include "ghd/branch_and_bound.h"
#include "hypergraph/generators.h"
#include "ordering/ordering.h"

namespace hypertree {
namespace {

SaigaConfig SmallConfig(uint64_t seed) {
  SaigaConfig cfg;
  cfg.num_islands = 3;
  cfg.island_population = 16;
  cfg.epochs = 4;
  cfg.generations_per_epoch = 8;
  cfg.seed = seed;
  return cfg;
}

TEST(SaigaTest, SolvesEasyInstances) {
  SaigaResult res = SaigaGhw(CycleHypergraph(8, 2), SmallConfig(1));
  EXPECT_EQ(res.ga.best_fitness, 2);
  EXPECT_TRUE(IsValidOrdering(res.ga.best, 8));
}

TEST(SaigaTest, AdaptedParametersInRange) {
  SaigaResult res =
      SaigaGhw(RandomHypergraph(12, 14, 2, 4, 5), SmallConfig(2));
  EXPECT_GE(res.final_crossover_rate, 0.1);
  EXPECT_LE(res.final_crossover_rate, 1.0);
  EXPECT_GE(res.final_mutation_rate, 0.01);
  EXPECT_LE(res.final_mutation_rate, 0.9);
  EXPECT_GE(res.final_tournament_size, 2);
  EXPECT_LE(res.final_tournament_size, 6);
}

TEST(SaigaTest, NeverBelowExactGhw) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Hypergraph h = RandomHypergraph(10, 10, 2, 4, seed * 41);
    WidthResult exact = BranchAndBoundGhw(h);
    ASSERT_TRUE(exact.exact);
    SaigaResult saiga = SaigaGhw(h, SmallConfig(seed));
    EXPECT_GE(saiga.ga.best_fitness, exact.upper_bound) << "seed " << seed;
  }
}

TEST(SaigaTest, DeterministicForFixedSeed) {
  Hypergraph h = RandomHypergraph(12, 13, 2, 4, 77);
  SaigaResult a = SaigaGhw(h, SmallConfig(9));
  SaigaResult b = SaigaGhw(h, SmallConfig(9));
  EXPECT_EQ(a.ga.best_fitness, b.ga.best_fitness);
}

}  // namespace
}  // namespace hypertree
