// Death tests for the contract macros: every HT_CHECK* flavor must abort
// with file:line, the failed expression, the observed operand values and
// any streamed tail — and must be free of side effects on the pass path.

#include "util/check.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace hypertree {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  HT_CHECK(true);
  HT_CHECK(1 + 1 == 2) << "never rendered";
  HT_CHECK_EQ(4, 4);
  HT_CHECK_NE(4, 5);
  HT_CHECK_LT(4, 5);
  HT_CHECK_LE(5, 5);
  HT_CHECK_GT(5, 4);
  HT_CHECK_GE(5, 5);
  HT_CHECK_MSG(true, "never rendered %d", 0);
}

TEST(CheckTest, OperandsEvaluateExactlyOnce) {
  int calls = 0;
  auto next = [&calls] { return ++calls; };
  HT_CHECK_LE(next(), 10);
  EXPECT_EQ(calls, 1);
}

TEST(CheckTest, StreamedTailIsLazy) {
  // The message expression must not run when the check passes.
  int evaluated = 0;
  auto render = [&evaluated] {
    ++evaluated;
    return std::string("boom");
  };
  HT_CHECK(true) << render();
  EXPECT_EQ(evaluated, 0);
}

TEST(CheckTest, DanglingElseSafe) {
  bool took_else = false;
  if (false)
    HT_CHECK_EQ(1, 1);
  else
    took_else = true;
  EXPECT_TRUE(took_else);
}

TEST(CheckDeathTest, CheckReportsExpressionAndLocation) {
  EXPECT_DEATH(HT_CHECK(2 + 2 == 5),
               "HT_CHECK failed at .*check_test\\.cc:[0-9]+: 2 \\+ 2 == 5");
}

TEST(CheckDeathTest, CheckAppendsStreamedMessage) {
  int width = 7;
  EXPECT_DEATH(HT_CHECK(width == 3) << "bad width " << width,
               "HT_CHECK failed.*width == 3.*bad width 7");
}

TEST(CheckDeathTest, ComparisonReportsBothValues) {
  int rows = 3, arity = 4;
  EXPECT_DEATH(HT_CHECK_EQ(rows, arity), "rows == arity.*\\(3 vs. 4\\)");
  EXPECT_DEATH(HT_CHECK_GE(rows, arity) << "flat buffer torn",
               "\\(3 vs. 4\\).*flat buffer torn");
}

TEST(CheckDeathTest, AllComparisonFlavorsAreFatal) {
  EXPECT_DEATH(HT_CHECK_NE(1, 1), "1 != 1");
  EXPECT_DEATH(HT_CHECK_LT(2, 1), "2 < 1");
  EXPECT_DEATH(HT_CHECK_LE(2, 1), "2 <= 1");
  EXPECT_DEATH(HT_CHECK_GT(1, 2), "1 > 2");
  EXPECT_DEATH(HT_CHECK_GE(1, 2), "1 >= 2");
}

TEST(CheckDeathTest, CheckMsgKeepsPrintfForm) {
  EXPECT_DEATH(HT_CHECK_MSG(false, "shard %d of %d", 7, 4),
               "shard 7 of 4");
}

TEST(CheckDeathTest, DCheckMatchesBuildType) {
  std::vector<int> empty;
  if (ht_internal::kDCheckEnabled) {
    EXPECT_DEATH(HT_DCHECK(!empty.empty()), "HT_CHECK failed");
    EXPECT_DEATH(HT_DCHECK_EQ(empty.size(), 1u), "0 vs. 1");
  } else {
    // Compiled out: nothing evaluates, nothing aborts.
    HT_DCHECK(!empty.empty());
    HT_DCHECK_EQ(empty.size(), 1u) << "never rendered";
    SUCCEED();
  }
}

}  // namespace
}  // namespace hypertree
