// Fixture: the retired false-positive class. A single-statement loop
// over an unordered container that only accumulates, followed by an
// emission AFTER the loop, is order-independent — the old line-window
// scan attributed the later emission to the loop; the body-aware scan
// (and the AST rule in ht_analyze.py, which owns the compiled
// directories) must not.
#include <ostream>
#include <unordered_map>

long EmitTotal(const std::unordered_map<int, long>& input, std::ostream& os) {
  std::unordered_map<int, long> counts = input;
  long total = 0;
  for (const auto& kv : counts) total += kv.second;
  os << "total=" << total << "\n";
  return total;
}
