// Fixture: a conventionally guarded header, with mentions of rand() and
// time() in comments and strings that must NOT be flagged.

#ifndef HYPERTREE_TESTS_LINT_FIXTURES_GOOD_GUARDED_H_
#define HYPERTREE_TESTS_LINT_FIXTURES_GOOD_GUARDED_H_

// The words rand( and time( in this comment are not calls.
inline const char* Slogan() { return "never call rand( or time( here"; }

#endif  // HYPERTREE_TESTS_LINT_FIXTURES_GOOD_GUARDED_H_
