// Fixture: sorting the keys before emission is the sanctioned pattern —
// the linter must stay quiet here.
#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

void DumpCountersSorted(const std::unordered_map<std::string, long>& input) {
  std::unordered_map<std::string, long> counters = input;
  std::vector<std::pair<std::string, long>> sorted_counters(counters.begin(),
                                                            counters.end());
  std::sort(sorted_counters.begin(), sorted_counters.end());
  for (const auto& [name, value] : sorted_counters) {
    std::printf("%s=%ld\n", name.c_str(), value);
  }
}

// Accumulating into a non-emitting sink (a counter) is also fine: the sum
// is order-independent.
long TotalOf(const std::unordered_map<std::string, long>& counters) {
  long total = 0;
  for (const auto& [name, value] : counters) {
    (void)name;
    total += value;
  }
  return total;
}
