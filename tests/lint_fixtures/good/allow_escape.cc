// Fixture: the inline escape hatch must suppress a deliberate use, both
// on the offending line and on the line directly above.
int DeliberateRand() {
  return rand();  // lint: allow(no-libc-rand)
}

int DeliberateRandAbove() {
  // lint: allow(no-libc-rand)
  return rand();
}
