// Fixture: the wall-clock header itself is banned.
#include <ctime>  // expect-lint: banned-header

int Unused() { return 0; }
