// Fixture: a header without a HYPERTREE_*_H_ include guard.
// expect-lint: include-guard
inline int Twice(int x) { return 2 * x; }
