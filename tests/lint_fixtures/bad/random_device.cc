// Fixture: hardware entropy must be flagged (both the header and the use).
#include <random>  // expect-lint: banned-header

int Seed() {
  std::random_device rd;  // expect-lint: no-random-device
  return static_cast<int>(rd());
}
