// Fixture: wall-clock reads must be flagged.
#include <cstdint>

uint64_t Stamp() {
  return static_cast<uint64_t>(time(nullptr));  // expect-lint: no-wall-clock
}
