// Fixture: printing straight out of an unordered container must be
// flagged — the emission order is whatever the hash table happens to be.
#include <cstdio>
#include <string>
#include <unordered_map>

void DumpCounters(const std::unordered_map<std::string, long>& input) {
  std::unordered_map<std::string, long> counters = input;
  for (const auto& [name, value] : counters) {  // expect-lint: unordered-output
    std::printf("%s=%ld\n", name.c_str(), value);
  }
}
