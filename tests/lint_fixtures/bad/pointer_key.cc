// Fixture: pointer-keyed ordered containers must be flagged.
#include <map>
#include <set>

struct Node {};

int CountOrdered(Node* a, Node* b) {
  std::map<Node*, int> order;  // expect-lint: no-pointer-key
  std::set<const Node*> seen;  // expect-lint: no-pointer-key
  order[a] = 1;
  order[b] = 2;
  seen.insert(a);
  return static_cast<int>(order.size() + seen.size());
}
