// Fixture: libc randomness must be flagged.
int Roll() {
  return rand() % 6;  // expect-lint: no-libc-rand
}
