#include "td/tree_decomposition.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "hypergraph/generators.h"
#include "ordering/heuristics.h"
#include "util/rng.h"

namespace hypertree {
namespace {

TEST(TreeDecompositionTest, ManualValidDecomposition) {
  // Path 0-1-2 decomposed as bags {0,1} - {1,2}.
  Graph g = PathGraph(3);
  TreeDecomposition td(3);
  int a = td.AddNode(Bitset::FromVector(3, {0, 1}));
  int b = td.AddNode(Bitset::FromVector(3, {1, 2}));
  td.AddTreeEdge(a, b);
  std::string why;
  EXPECT_TRUE(td.IsValidFor(g, &why)) << why;
  EXPECT_EQ(td.Width(), 1);
}

TEST(TreeDecompositionTest, DetectsUncoveredEdge) {
  Graph g = PathGraph(3);
  TreeDecomposition td(3);
  int a = td.AddNode(Bitset::FromVector(3, {0, 1}));
  int b = td.AddNode(Bitset::FromVector(3, {2}));
  td.AddTreeEdge(a, b);
  std::string why;
  EXPECT_FALSE(td.IsValidFor(g, &why));
  EXPECT_NE(why.find("edge"), std::string::npos);
}

TEST(TreeDecompositionTest, DetectsConnectednessViolation) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  TreeDecomposition td(3);
  int a = td.AddNode(Bitset::FromVector(3, {0, 1}));
  int b = td.AddNode(Bitset::FromVector(3, {1}));
  int c = td.AddNode(Bitset::FromVector(3, {1, 2}));
  // Vertex 1's nodes are a and c but they are linked through b... which
  // also holds 1, so make b NOT hold 1 to break connectedness.
  (void)b;
  TreeDecomposition bad(3);
  int x = bad.AddNode(Bitset::FromVector(3, {0, 1}));
  int y = bad.AddNode(Bitset::FromVector(3, {0}));
  int z = bad.AddNode(Bitset::FromVector(3, {1, 2}));
  bad.AddTreeEdge(x, y);
  bad.AddTreeEdge(y, z);
  std::string why;
  EXPECT_FALSE(bad.IsValidFor(g, &why));
  EXPECT_NE(why.find("connectedness"), std::string::npos);
  (void)a;
  (void)c;
}

TEST(TreeDecompositionTest, DetectsDisconnectedTree) {
  Graph g(2);
  g.AddEdge(0, 1);
  TreeDecomposition td(2);
  td.AddNode(Bitset::FromVector(2, {0, 1}));
  td.AddNode(Bitset::FromVector(2, {0, 1}));
  std::string why;
  EXPECT_FALSE(td.IsValidFor(g, &why));  // two nodes, no edge
}

TEST(TreeDecompositionTest, FromOrderingAlwaysValid) {
  Rng rng(5);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = RandomGraph(18, 40, seed);
    EliminationOrdering sigma = rng.Permutation(18);
    TreeDecomposition td = TreeDecompositionFromOrdering(g, sigma);
    std::string why;
    EXPECT_TRUE(td.IsValidFor(g, &why)) << "seed " << seed << ": " << why;
  }
}

TEST(TreeDecompositionTest, FromOrderingOnDisconnectedGraph) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);  // vertex 4, 5 isolated
  Rng rng(6);
  TreeDecomposition td = TreeDecompositionFromOrdering(g, rng.Permutation(6));
  std::string why;
  EXPECT_TRUE(td.IsValidFor(g, &why)) << why;
}

TEST(TreeDecompositionTest, HypergraphValidityViaPrimal) {
  // Lemma 1: a TD of the primal graph is a TD of the hypergraph.
  Hypergraph h = Grid2DHypergraph(3);
  Graph primal = h.PrimalGraph();
  Rng rng(7);
  TreeDecomposition td =
      TreeDecompositionFromOrdering(primal, MinFillOrdering(primal, &rng));
  std::string why;
  EXPECT_TRUE(td.IsValidForHypergraph(h, &why)) << why;
}

TEST(TreeDecompositionTest, SimplifyPreservesValidityAndWidth) {
  Rng rng(11);
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = RandomGraph(20, 50, seed + 200);
    TreeDecomposition td =
        TreeDecompositionFromOrdering(g, MinFillOrdering(g, &rng));
    TreeDecomposition simple = SimplifyTreeDecomposition(td);
    std::string why;
    EXPECT_TRUE(simple.IsValidFor(g, &why)) << "seed " << seed << ": " << why;
    EXPECT_EQ(simple.Width(), td.Width()) << "seed " << seed;
    EXPECT_LE(simple.NumNodes(), td.NumNodes());
  }
}

TEST(TreeDecompositionTest, SimplifyShrinksCliqueDecomposition) {
  // All bucket bags of K_n are nested: one node must remain.
  Graph g = CompleteGraph(6);
  Rng rng(12);
  TreeDecomposition td =
      TreeDecompositionFromOrdering(g, MinFillOrdering(g, &rng));
  EXPECT_EQ(td.NumNodes(), 6);
  TreeDecomposition simple = SimplifyTreeDecomposition(td);
  EXPECT_EQ(simple.NumNodes(), 1);
  EXPECT_TRUE(simple.IsValidFor(g, nullptr));
}

TEST(TreeDecompositionTest, SimplifyPathDecomposition) {
  // Path bags {i, i+1} are pairwise incomparable: nothing merges.
  Graph g = PathGraph(6);
  TreeDecomposition td =
      TreeDecompositionFromOrdering(g, {0, 1, 2, 3, 4, 5});
  TreeDecomposition simple = SimplifyTreeDecomposition(td);
  EXPECT_EQ(simple.NumNodes(), 5);  // one singleton endpoint bag merges
  EXPECT_TRUE(simple.IsValidFor(g, nullptr));
}

TEST(TreeDecompositionTest, WidthOfEmpty) {
  TreeDecomposition td(0);
  EXPECT_EQ(td.Width(), -1);
  EXPECT_EQ(td.NumNodes(), 0);
}

}  // namespace
}  // namespace hypertree
