#include "bench/bench_util.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.h"

namespace hypertree {
namespace {

TEST(ParseScaleTest, AcceptsPositiveNumbers) {
  EXPECT_DOUBLE_EQ(bench::ParseScale("1"), 1.0);
  EXPECT_DOUBLE_EQ(bench::ParseScale("0.25"), 0.25);
  EXPECT_DOUBLE_EQ(bench::ParseScale("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(bench::ParseScale("2e1"), 20.0);
  EXPECT_DOUBLE_EQ(bench::ParseScale("0.5 "), 0.5);  // trailing blanks ok
}

TEST(ParseScaleTest, UnsetOrEmptyMeansDefault) {
  EXPECT_DOUBLE_EQ(bench::ParseScale(nullptr), 1.0);
  EXPECT_DOUBLE_EQ(bench::ParseScale(""), 1.0);
}

TEST(ParseScaleTest, RejectsGarbageWithDefault) {
  EXPECT_DOUBLE_EQ(bench::ParseScale("fast"), 1.0);
  EXPECT_DOUBLE_EQ(bench::ParseScale("1.5x"), 1.0);   // trailing garbage
  EXPECT_DOUBLE_EQ(bench::ParseScale("0"), 1.0);      // zero is not usable
  EXPECT_DOUBLE_EQ(bench::ParseScale("-2"), 1.0);     // negative
  EXPECT_DOUBLE_EQ(bench::ParseScale("nan"), 1.0);
  EXPECT_DOUBLE_EQ(bench::ParseScale("inf"), 1.0);
  EXPECT_DOUBLE_EQ(bench::ParseScale("1e999"), 1.0);  // overflow
}

TEST(ScaleTest, ReadsEnvironmentVariable) {
  ASSERT_EQ(setenv("HYPERTREE_BENCH_SCALE", "0.125", 1), 0);
  EXPECT_DOUBLE_EQ(bench::Scale(), 0.125);
  ASSERT_EQ(setenv("HYPERTREE_BENCH_SCALE", "bogus", 1), 0);
  EXPECT_DOUBLE_EQ(bench::Scale(), 1.0);
  ASSERT_EQ(unsetenv("HYPERTREE_BENCH_SCALE"), 0);
  EXPECT_DOUBLE_EQ(bench::Scale(), 1.0);
}

class JsonReporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "bench_util_test_records.ndjson";
    std::remove(path_.c_str());
    ASSERT_EQ(setenv("HYPERTREE_BENCH_JSON", path_.c_str(), 1), 0);
  }
  void TearDown() override {
    unsetenv("HYPERTREE_BENCH_JSON");
    std::remove(path_.c_str());
  }

  std::vector<Json> ReadRecords() {
    std::vector<Json> records;
    std::ifstream in(path_);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::string error;
      auto parsed = Json::Parse(line, &error);
      EXPECT_TRUE(parsed.has_value()) << error << " in: " << line;
      if (parsed.has_value()) records.push_back(std::move(*parsed));
    }
    return records;
  }

  std::string path_;
};

TEST_F(JsonReporterTest, DisabledWithoutEnvVar) {
  unsetenv("HYPERTREE_BENCH_JSON");
  bench::JsonReporter report("unit");
  EXPECT_FALSE(report.enabled());
  report.Record("i", "a", 1, true, 0, 0.0);  // must be a no-op, not a crash
}

TEST_F(JsonReporterTest, WritesSchemaStableRecords) {
  bench::JsonReporter report("unit");
  ASSERT_TRUE(report.enabled());
  report.Record("grid2d_3", "bb_tw", 3, /*exact=*/true, /*nodes=*/120, 1.5,
                /*deterministic=*/true, /*lower_bound=*/3,
                Json::Object().Set("extra", 7L));
  report.Record("grid2d_4", "ga_tw", 4, /*exact=*/false, /*nodes=*/0, 2.5);

  std::vector<Json> records = ReadRecords();
  ASSERT_EQ(records.size(), 2u);

  // Field order is part of the contract: byte-comparable documents.
  const std::vector<std::string> expected_order = {
      "bench",   "instance", "algorithm",     "width",    "exact",
      "lower_bound", "nodes", "wall_ms", "deterministic", "counters",
      "kernels"};
  for (const Json& rec : records) {
    ASSERT_TRUE(rec.is_object());
    ASSERT_EQ(rec.fields().size(), expected_order.size());
    for (size_t i = 0; i < expected_order.size(); ++i) {
      EXPECT_EQ(rec.fields()[i].first, expected_order[i]);
    }
    EXPECT_EQ(rec.Find("bench")->AsString(), "unit");
    // Every record names the active kernel backend (docs/KERNELS.md).
    ASSERT_TRUE(rec.Find("kernels")->is_object());
    EXPECT_FALSE(rec.Find("kernels")->Find("backend")->AsString().empty());
  }
  EXPECT_EQ(records[0].Find("instance")->AsString(), "grid2d_3");
  EXPECT_EQ(records[0].Find("algorithm")->AsString(), "bb_tw");
  EXPECT_EQ(records[0].Find("width")->AsInt(), 3);
  EXPECT_TRUE(records[0].Find("exact")->AsBool());
  EXPECT_EQ(records[0].Find("lower_bound")->AsInt(), 3);
  EXPECT_EQ(records[0].Find("nodes")->AsInt(), 120);
  EXPECT_DOUBLE_EQ(records[0].Find("wall_ms")->AsDouble(), 1.5);
  EXPECT_TRUE(records[0].Find("deterministic")->AsBool());
  EXPECT_EQ(records[0].Find("counters")->Find("extra")->AsInt(), 7);

  EXPECT_FALSE(records[1].Find("exact")->AsBool());
  // `deterministic` defaults to true (seeded, iteration-bounded runs);
  // callers opt OUT for budget-interrupted searches.
  EXPECT_TRUE(records[1].Find("deterministic")->AsBool());
  EXPECT_EQ(records[1].Find("lower_bound")->AsInt(), -1);
}

TEST_F(JsonReporterTest, WidthResultOverloadCarriesCacheCounters) {
  bench::JsonReporter report("unit");
  WidthResult res;
  res.lower_bound = 2;
  res.upper_bound = 3;
  res.exact = true;
  res.nodes = 77;
  res.seconds = 0.25;
  res.cache_stats.hits = 10;
  res.cache_stats.misses = 4;
  res.cache_stats.inserts = 4;
  report.Record("cycle_10_3", "bb_ghw", res,
                Json::Object().Set("static_lb", 2));

  std::vector<Json> records = ReadRecords();
  ASSERT_EQ(records.size(), 1u);
  const Json& rec = records[0];
  EXPECT_EQ(rec.Find("width")->AsInt(), 3);
  EXPECT_EQ(rec.Find("lower_bound")->AsInt(), 2);
  EXPECT_EQ(rec.Find("nodes")->AsInt(), 77);
  EXPECT_DOUBLE_EQ(rec.Find("wall_ms")->AsDouble(), 250.0);
  EXPECT_TRUE(rec.Find("deterministic")->AsBool());  // mirrors res.exact
  const Json* counters = rec.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("cache_hits")->AsInt(), 10);
  EXPECT_EQ(counters->Find("cache_misses")->AsInt(), 4);
  EXPECT_EQ(counters->Find("cache_inserts")->AsInt(), 4);
  EXPECT_EQ(counters->Find("static_lb")->AsInt(), 2);
}

TEST_F(JsonReporterTest, AppendsAcrossReporters) {
  {
    bench::JsonReporter a("unit");
    a.Record("x", "alg", 1, true, 0, 0.5);
  }
  {
    bench::JsonReporter b("unit");
    b.Record("y", "alg", 2, true, 0, 0.5);
  }
  EXPECT_EQ(ReadRecords().size(), 2u);
}

}  // namespace
}  // namespace hypertree
