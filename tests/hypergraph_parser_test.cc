#include "hypergraph/parser.h"

#include <sstream>

#include <gtest/gtest.h>

namespace hypertree {
namespace {

TEST(HypergraphParserTest, ParseBasic) {
  std::string text =
      "edge1(a, b, c),\n"
      "edge2(c, d),\n"
      "edge3(d, e, a).\n";
  std::string error;
  auto h = ReadHypergraphFromString(text, &error);
  ASSERT_TRUE(h.has_value()) << error;
  EXPECT_EQ(h->NumVertices(), 5);
  EXPECT_EQ(h->NumEdges(), 3);
  EXPECT_EQ(h->EdgeName(0), "edge1");
  EXPECT_EQ(h->VertexName(0), "a");
  // edge3 over d, e, a -> vertex ids 3, 4, 0.
  EXPECT_EQ(h->EdgeVertices(2), (std::vector<int>{0, 3, 4}));
}

TEST(HypergraphParserTest, SkipsComments) {
  std::string text =
      "% comment line\n"
      "e(a,b),\n"
      "# another comment\n"
      "f(b,c).\n";
  auto h = ReadHypergraphFromString(text);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->NumEdges(), 2);
}

TEST(HypergraphParserTest, ToleratesWhitespaceAndMissingTerminator) {
  std::string text = "e ( a , b )\nf(b,c)";
  auto h = ReadHypergraphFromString(text);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->NumEdges(), 2);
  EXPECT_EQ(h->NumVertices(), 3);
}

TEST(HypergraphParserTest, RejectsMissingParen) {
  std::string error;
  EXPECT_FALSE(ReadHypergraphFromString("edge a, b).", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(HypergraphParserTest, RejectsEmpty) {
  std::string error;
  EXPECT_FALSE(ReadHypergraphFromString("", &error).has_value());
}

TEST(HypergraphParserTest, RoundTrip) {
  std::string text = "c1(x1,x2,x3),\nc2(x1,x5,x6),\nc3(x3,x4,x5).\n";
  auto h = ReadHypergraphFromString(text);
  ASSERT_TRUE(h.has_value());
  std::ostringstream out;
  WriteHypergraph(*h, out);
  auto back = ReadHypergraphFromString(out.str());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->NumVertices(), h->NumVertices());
  EXPECT_EQ(back->NumEdges(), h->NumEdges());
  for (int e = 0; e < h->NumEdges(); ++e) {
    EXPECT_EQ(back->EdgeVertices(e), h->EdgeVertices(e));
    EXPECT_EQ(back->EdgeName(e), h->EdgeName(e));
  }
}

TEST(HypergraphParserTest, StreamOverload) {
  std::istringstream in("a(x,y), b(y,z).");
  auto h = ReadHypergraph(in);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->NumEdges(), 2);
}

}  // namespace
}  // namespace hypertree
