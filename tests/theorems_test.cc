// Direct empirical checks of the thesis' chapter-3 theorems on random
// instances, beyond the pipeline tests:
//   Theorem 1  — leaf normal form with bag containment,
//   Theorem 2  — an ordering derived from any GHD achieves at most its
//                width,
//   Theorem 3  — min over orderings equals ghw (via the exact searches).

#include <gtest/gtest.h>

#include "ghd/branch_and_bound.h"
#include "ghd/ghw_from_ordering.h"
#include "hypergraph/generators.h"
#include "ordering/heuristics.h"
#include "td/leaf_normal_form.h"
#include "util/rng.h"

namespace hypertree {
namespace {

class Theorem2Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem2Test, OrderingDerivedFromGhdIsNoWider) {
  uint64_t seed = GetParam();
  Hypergraph h = RandomHypergraph(10, 10, 2, 4, seed * 101 + 17);
  GhwEvaluator eval(h);
  // Any decomposition (here: from a random ordering with exact covers).
  Rng rng(seed);
  EliminationOrdering some = RandomOrdering(h.NumVertices(), &rng);
  GeneralizedHypertreeDecomposition ghd =
      eval.BuildGhd(some, CoverMode::kExact);
  ASSERT_TRUE(ghd.IsValidFor(h, nullptr));
  // Theorem 2: the dca ordering extracted from the GHD's tree
  // decomposition achieves width(sigma, H) <= width(GHD).
  EliminationOrdering derived = OrderingFromTreeDecomposition(h, ghd.td());
  EXPECT_LE(eval.EvaluateOrdering(derived, CoverMode::kExact), ghd.Width())
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem2Test, ::testing::Range(0, 15));

TEST(Theorem2Test, StartingFromTheOptimum) {
  // Applying Theorem 2 to an optimal GHD must reproduce ghw exactly
  // (Theorem 3: no ordering can do better).
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Hypergraph h = RandomHypergraph(9, 8, 2, 4, seed * 13 + 29);
    WidthResult exact = BranchAndBoundGhw(h);
    ASSERT_TRUE(exact.exact);
    GhwEvaluator eval(h);
    GeneralizedHypertreeDecomposition optimal =
        eval.BuildGhd(exact.best_ordering, CoverMode::kExact);
    EliminationOrdering derived = OrderingFromTreeDecomposition(h, optimal.td());
    EXPECT_EQ(eval.EvaluateOrdering(derived, CoverMode::kExact),
              exact.upper_bound)
        << "seed " << seed;
  }
}

TEST(Theorem1Test, LnfBagContainmentOnStructuredFamilies) {
  for (const Hypergraph& h :
       {AdderHypergraph(4), BridgeHypergraph(4), Grid2DHypergraph(3),
        CycleHypergraph(8, 3)}) {
    Graph primal = h.PrimalGraph();
    Rng rng(3);
    TreeDecomposition td =
        TreeDecompositionFromOrdering(primal, MinFillOrdering(primal, &rng));
    LeafNormalForm lnf = TransformLeafNormalForm(h, td);
    EXPECT_TRUE(IsLeafNormalForm(h, lnf)) << h.name();
    for (int p = 0; p < lnf.td.NumNodes(); ++p) {
      bool contained = false;
      for (int q = 0; q < td.NumNodes() && !contained; ++q) {
        contained = lnf.td.Bag(p).IsSubsetOf(td.Bag(q));
      }
      EXPECT_TRUE(contained) << h.name() << " node " << p;
    }
    // The LNF has exactly one leaf per hyperedge.
    int leaves = 0;
    for (int p = 0; p < lnf.td.NumNodes(); ++p) {
      if (lnf.td.TreeNeighbors(p).size() <= 1) ++leaves;
    }
    if (lnf.td.NumNodes() > 1) {
      EXPECT_EQ(leaves, h.NumEdges()) << h.name();
    }
  }
}

TEST(Theorem3Test, OrderingSpaceNeverBeatsGhw) {
  // No ordering may achieve a width below ghw (soundness direction).
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Hypergraph h = RandomHypergraph(9, 8, 2, 4, seed * 37 + 3);
    WidthResult exact = BranchAndBoundGhw(h);
    ASSERT_TRUE(exact.exact);
    GhwEvaluator eval(h);
    Rng rng(seed);
    for (int trial = 0; trial < 20; ++trial) {
      EliminationOrdering sigma = RandomOrdering(h.NumVertices(), &rng);
      EXPECT_GE(eval.EvaluateOrdering(sigma, CoverMode::kExact),
                exact.upper_bound)
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace hypertree
