#include "bounds/lower_bounds.h"

#include <gtest/gtest.h>

#include "bounds/ghw_lower_bounds.h"
#include "graph/elimination_graph.h"
#include "graph/generators.h"
#include "hypergraph/generators.h"
#include "ordering/evaluator.h"
#include "ordering/heuristics.h"

namespace hypertree {
namespace {

TEST(LowerBoundsTest, KnownValues) {
  Rng rng(1);
  EXPECT_EQ(MinorMinWidthLowerBound(PathGraph(10), &rng), 1);
  EXPECT_EQ(MinorMinWidthLowerBound(CycleGraph(10), &rng), 2);
  EXPECT_EQ(MinorMinWidthLowerBound(CompleteGraph(7), &rng), 6);
  // Grids: minor-min-width gives at least 2 on an n x n grid.
  EXPECT_GE(MinorMinWidthLowerBound(GridGraph(5, 5), &rng), 2);
}

TEST(LowerBoundsTest, GammaROnCompleteGraph) {
  Rng rng(2);
  EXPECT_EQ(MinorGammaRLowerBound(CompleteGraph(6), &rng), 5);
}

TEST(LowerBoundsTest, LowerBoundNeverExceedsUpperBound) {
  Rng rng(3);
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Graph g = RandomGraph(20, 5 + static_cast<int>(seed) * 10, seed);
    int lb = TreewidthLowerBound(g, &rng);
    int ub = EvaluateOrderingWidth(g, MinFillOrdering(g, &rng));
    EXPECT_LE(lb, ub) << "seed " << seed;
    EXPECT_GE(lb, 0);
  }
}

TEST(LowerBoundsTest, KTreeSandwich) {
  // For a full k-tree, treewidth is exactly k: bounds must bracket it.
  Rng rng(4);
  for (int k : {2, 3, 5}) {
    Graph g = RandomKTree(30, k, 1.0, 77 + k);
    int lb = TreewidthLowerBound(g, &rng);
    int ub = EvaluateOrderingWidth(g, MinFillOrdering(g, &rng));
    EXPECT_LE(lb, k);
    EXPECT_EQ(ub, k);  // chordal: min-fill is optimal
    EXPECT_GE(lb, k / 2);  // contraction bounds are reasonably tight here
  }
}

// The n <= 64 single-word fast path must match the generic contraction
// loop bit-for-bit: same bound AND same number of rng draws (the streams
// stay aligned afterwards). The draw-sequence check matters because the
// searches thread one rng through every heuristic call, so an extra or
// missing tie-break draw would silently change downstream node counts.
TEST(LowerBoundsTest, SingleWordFastPathMatchesGenericOnGraphs) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    int n = 4 + static_cast<int>(seed * 3) % 61;  // spans up to n = 64
    Graph g = RandomGraph(n, n + static_cast<int>(seed) * 7, seed);
    Rng fast_rng(seed + 100);
    Rng ref_rng(seed + 100);
    int fast = MinorMinWidthLowerBound(g, &fast_rng);
    int ref = ht_internal::MinorMinWidthLowerBoundGeneric(g, &ref_rng);
    EXPECT_EQ(fast, ref) << "n=" << n << " seed=" << seed;
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(fast_rng.Next(), ref_rng.Next())
          << "rng streams diverged: n=" << n << " seed=" << seed;
    }
    // rng == nullptr (deterministic first-wins ties) must agree too.
    EXPECT_EQ(MinorMinWidthLowerBound(g, nullptr),
              ht_internal::MinorMinWidthLowerBoundGeneric(g, nullptr));
  }
}

TEST(LowerBoundsTest, SingleWordFastPathMatchesGenericOnEliminations) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    int n = 10 + static_cast<int>(seed * 5) % 55;
    Graph g = RandomGraph(n, 2 * n, seed + 7);
    EliminationGraph eg(g);
    Rng order_rng(seed);
    int depth = static_cast<int>(order_rng.Next() % (n - 2));
    for (int i = 0; i < depth; ++i) {
      Bitset act = eg.ActiveBits();
      int pick = order_rng.UniformInt(act.Count());
      int v = act.First();
      while (pick-- > 0) v = act.Next(v);
      eg.Eliminate(v);
    }
    Rng fast_rng(seed + 200);
    Rng ref_rng(seed + 200);
    int fast = MinorMinWidthLowerBound(eg, &fast_rng);
    int ref = ht_internal::MinorMinWidthLowerBoundGeneric(eg, &ref_rng);
    EXPECT_EQ(fast, ref) << "n=" << n << " seed=" << seed;
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(fast_rng.Next(), ref_rng.Next())
          << "rng streams diverged: n=" << n << " seed=" << seed;
    }
  }
}

TEST(LowerBoundsTest, GenericPathStillUsedAbove64Vertices) {
  // n > 64 takes the multi-word path; spot-check it against known shapes.
  Rng rng(9);
  EXPECT_EQ(MinorMinWidthLowerBound(PathGraph(80), &rng), 1);
  EXPECT_EQ(MinorMinWidthLowerBound(CompleteGraph(70), &rng), 69);
}

TEST(GhwLowerBoundsTest, AcyclicIsOne) {
  Hypergraph h = RandomAcyclicHypergraph(15, 4, 3);
  EXPECT_EQ(GhwLowerBound(h), 1);
}

TEST(GhwLowerBoundsTest, CyclicAtLeastTwo) {
  Rng rng(5);
  EXPECT_GE(GhwLowerBound(Grid2DHypergraph(4), &rng), 2);
  EXPECT_GE(GhwLowerBound(CycleHypergraph(9, 2), &rng), 2);
  EXPECT_GE(GhwLowerBound(AdderHypergraph(5), &rng), 2);
}

TEST(GhwLowerBoundsTest, TwKscOnCliqueHypergraph) {
  // clique_n has tw = n-1 and binary edges: tw-ksc gives ceil(n/2).
  Rng rng(6);
  Hypergraph h = CliqueHypergraph(10);
  EXPECT_GE(TwKscGhwLowerBound(h, &rng), 5);
}

TEST(GhwLowerBoundsTest, EmptyHypergraph) {
  Hypergraph h(0);
  EXPECT_EQ(GhwLowerBound(h), 0);
}

}  // namespace
}  // namespace hypertree
