#include "bounds/lower_bounds.h"

#include <gtest/gtest.h>

#include "bounds/ghw_lower_bounds.h"
#include "graph/generators.h"
#include "hypergraph/generators.h"
#include "ordering/evaluator.h"
#include "ordering/heuristics.h"

namespace hypertree {
namespace {

TEST(LowerBoundsTest, KnownValues) {
  Rng rng(1);
  EXPECT_EQ(MinorMinWidthLowerBound(PathGraph(10), &rng), 1);
  EXPECT_EQ(MinorMinWidthLowerBound(CycleGraph(10), &rng), 2);
  EXPECT_EQ(MinorMinWidthLowerBound(CompleteGraph(7), &rng), 6);
  // Grids: minor-min-width gives at least 2 on an n x n grid.
  EXPECT_GE(MinorMinWidthLowerBound(GridGraph(5, 5), &rng), 2);
}

TEST(LowerBoundsTest, GammaROnCompleteGraph) {
  Rng rng(2);
  EXPECT_EQ(MinorGammaRLowerBound(CompleteGraph(6), &rng), 5);
}

TEST(LowerBoundsTest, LowerBoundNeverExceedsUpperBound) {
  Rng rng(3);
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Graph g = RandomGraph(20, 5 + static_cast<int>(seed) * 10, seed);
    int lb = TreewidthLowerBound(g, &rng);
    int ub = EvaluateOrderingWidth(g, MinFillOrdering(g, &rng));
    EXPECT_LE(lb, ub) << "seed " << seed;
    EXPECT_GE(lb, 0);
  }
}

TEST(LowerBoundsTest, KTreeSandwich) {
  // For a full k-tree, treewidth is exactly k: bounds must bracket it.
  Rng rng(4);
  for (int k : {2, 3, 5}) {
    Graph g = RandomKTree(30, k, 1.0, 77 + k);
    int lb = TreewidthLowerBound(g, &rng);
    int ub = EvaluateOrderingWidth(g, MinFillOrdering(g, &rng));
    EXPECT_LE(lb, k);
    EXPECT_EQ(ub, k);  // chordal: min-fill is optimal
    EXPECT_GE(lb, k / 2);  // contraction bounds are reasonably tight here
  }
}

TEST(GhwLowerBoundsTest, AcyclicIsOne) {
  Hypergraph h = RandomAcyclicHypergraph(15, 4, 3);
  EXPECT_EQ(GhwLowerBound(h), 1);
}

TEST(GhwLowerBoundsTest, CyclicAtLeastTwo) {
  Rng rng(5);
  EXPECT_GE(GhwLowerBound(Grid2DHypergraph(4), &rng), 2);
  EXPECT_GE(GhwLowerBound(CycleHypergraph(9, 2), &rng), 2);
  EXPECT_GE(GhwLowerBound(AdderHypergraph(5), &rng), 2);
}

TEST(GhwLowerBoundsTest, TwKscOnCliqueHypergraph) {
  // clique_n has tw = n-1 and binary edges: tw-ksc gives ceil(n/2).
  Rng rng(6);
  Hypergraph h = CliqueHypergraph(10);
  EXPECT_GE(TwKscGhwLowerBound(h, &rng), 5);
}

TEST(GhwLowerBoundsTest, EmptyHypergraph) {
  Hypergraph h(0);
  EXPECT_EQ(GhwLowerBound(h), 0);
}

}  // namespace
}  // namespace hypertree
