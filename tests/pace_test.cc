#include "td/pace.h"

#include <sstream>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "ordering/heuristics.h"
#include "util/rng.h"

namespace hypertree {
namespace {

TEST(PaceTest, GraphRoundTrip) {
  Graph g = QueensGraph(4);
  std::ostringstream out;
  WritePaceGraph(g, out);
  std::istringstream in(out.str());
  std::string error;
  auto back = ReadPaceGraph(in, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->NumVertices(), g.NumVertices());
  EXPECT_EQ(back->Edges(), g.Edges());
}

TEST(PaceTest, GraphParseErrors) {
  {
    std::istringstream in("1 2\n");
    EXPECT_FALSE(ReadPaceGraph(in).has_value());  // edge before header
  }
  {
    std::istringstream in("p tw 2 1\n1 9\n");
    EXPECT_FALSE(ReadPaceGraph(in).has_value());  // out of range
  }
  {
    std::istringstream in("p cep 2 1\n");
    EXPECT_FALSE(ReadPaceGraph(in).has_value());  // wrong kind
  }
}

TEST(PaceTest, TreeDecompositionRoundTrip) {
  Graph g = GridGraph(4, 4);
  Rng rng(1);
  TreeDecomposition td = TreeDecompositionFromOrdering(g, MinFillOrdering(g, &rng));
  ASSERT_TRUE(td.IsValidFor(g, nullptr));
  std::ostringstream out;
  WritePaceTreeDecomposition(td, out);
  std::istringstream in(out.str());
  std::string error;
  auto back = ReadPaceTreeDecomposition(in, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->NumNodes(), td.NumNodes());
  EXPECT_EQ(back->Width(), td.Width());
  std::string why;
  EXPECT_TRUE(back->IsValidFor(g, &why)) << why;
}

TEST(PaceTest, TdExampleFromSpec) {
  // A hand-written .td for the path 1-2-3 (PACE's 1-based ids).
  std::istringstream in(
      "c example\n"
      "s td 2 2 3\n"
      "b 1 1 2\n"
      "b 2 2 3\n"
      "1 2\n");
  auto td = ReadPaceTreeDecomposition(in);
  ASSERT_TRUE(td.has_value());
  Graph path = PathGraph(3);
  EXPECT_TRUE(td->IsValidFor(path, nullptr));
  EXPECT_EQ(td->Width(), 1);
}

TEST(PaceTest, TdParseErrors) {
  {
    std::istringstream in("b 1 1\n");
    EXPECT_FALSE(ReadPaceTreeDecomposition(in).has_value());
  }
  {
    std::istringstream in("s td 1 1 2\nb 1 5\n");
    EXPECT_FALSE(ReadPaceTreeDecomposition(in).has_value());
  }
  {
    std::istringstream in("s td 2 1 2\nb 1 1\nb 1 2\n");
    EXPECT_FALSE(ReadPaceTreeDecomposition(in).has_value());  // dup bag id
  }
}

}  // namespace
}  // namespace hypertree
