#include "csp/counting.h"

#include <gtest/gtest.h>

#include "csp/backtracking.h"
#include "csp/generators.h"
#include "ghd/ghw_from_ordering.h"
#include "graph/generators.h"
#include "hypergraph/generators.h"
#include "ordering/heuristics.h"
#include "util/rng.h"

namespace hypertree {
namespace {

struct Decomps {
  TreeDecomposition td;
  GeneralizedHypertreeDecomposition ghd;
};

Decomps Decompose(const Csp& csp, uint64_t seed) {
  Hypergraph h = csp.ConstraintHypergraph();
  GhwEvaluator eval(h);
  Rng rng(seed);
  EliminationOrdering sigma = MinFillOrdering(eval.primal(), &rng);
  return {TreeDecompositionFromOrdering(eval.primal(), sigma),
          eval.BuildGhd(sigma, CoverMode::kExact)};
}

TEST(CountingTest, TriangleColorings) {
  Csp csp = GraphColoringCsp(CompleteGraph(3), 3);
  Decomps d = Decompose(csp, 1);
  EXPECT_EQ(CountViaTreeDecomposition(csp, d.td), 6);
  EXPECT_EQ(CountViaGhd(csp, d.ghd), 6);
}

TEST(CountingTest, PathColoringsClosedForm) {
  // Proper q-colorings of a path with n vertices: q * (q-1)^(n-1).
  Csp csp = GraphColoringCsp(PathGraph(6), 3);
  Decomps d = Decompose(csp, 2);
  EXPECT_EQ(CountViaTreeDecomposition(csp, d.td), 3 * 32);
  EXPECT_EQ(CountViaGhd(csp, d.ghd), 3 * 32);
}

TEST(CountingTest, CycleColoringsClosedForm) {
  // Proper q-colorings of a cycle C_n: (q-1)^n + (-1)^n (q-1).
  Csp csp = GraphColoringCsp(CycleGraph(5), 3);
  Decomps d = Decompose(csp, 3);
  EXPECT_EQ(CountViaTreeDecomposition(csp, d.td), 32 - 2);
}

TEST(CountingTest, UnsatCountsZero) {
  Csp csp = SatCsp(2, {{1}, {-1}});
  Decomps d = Decompose(csp, 4);
  EXPECT_EQ(CountViaTreeDecomposition(csp, d.td), 0);
  EXPECT_EQ(CountViaGhd(csp, d.ghd), 0);
}

class CountingAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(CountingAgreementTest, MatchesBacktrackingOnRandomCsps) {
  uint64_t seed = GetParam();
  Hypergraph h = RandomHypergraph(8, 9, 2, 3, seed * 19 + 2);
  for (double tightness : {0.3, 0.6}) {
    Csp csp = RandomCspFromHypergraph(h, 2, tightness, false, seed);
    long expected = BacktrackingCountSolutions(csp);
    Decomps d = Decompose(csp, seed);
    EXPECT_EQ(CountViaTreeDecomposition(csp, d.td), expected)
        << "td seed " << seed << " t " << tightness;
    EXPECT_EQ(CountViaGhd(csp, d.ghd), expected)
        << "ghd seed " << seed << " t " << tightness;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountingAgreementTest, ::testing::Range(0, 12));

TEST(CountingTest, AcyclicCountMatchesBacktracking) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Hypergraph h = RandomAcyclicHypergraph(7, 3, seed);
    Csp csp = RandomCspFromHypergraph(h, 2, 0.5, false, seed + 9);
    EXPECT_EQ(CountAcyclicCsp(csp), BacktrackingCountSolutions(csp))
        << "seed " << seed;
  }
}

TEST(CountingTest, FreeVariablesMultiplyDomains) {
  // One binary constraint over {0,1}; variable 2 unconstrained with
  // domain 3: counts multiply.
  Csp csp(3, 3);
  Relation r({0, 1});
  r.AddTuple({0, 0});
  r.AddTuple({1, 2});
  csp.AddConstraint({0, 1}, std::move(r));
  EXPECT_EQ(CountAcyclicCsp(csp), 2 * 3);
}

}  // namespace
}  // namespace hypertree
