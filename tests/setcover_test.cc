#include "setcover/exact.h"
#include "setcover/greedy.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hypertree {
namespace {

std::vector<Bitset> Sets(int universe,
                         const std::vector<std::vector<int>>& sets) {
  std::vector<Bitset> out;
  for (const auto& s : sets) out.push_back(Bitset::FromVector(universe, s));
  return out;
}

TEST(GreedyCoverTest, CoversTarget) {
  auto sets = Sets(6, {{0, 1, 2}, {2, 3}, {3, 4, 5}, {0, 5}});
  Bitset target = Bitset::FromVector(6, {0, 1, 2, 3, 4, 5});
  std::vector<int> chosen;
  int k = GreedySetCover(sets, target, nullptr, &chosen);
  EXPECT_EQ(k, static_cast<int>(chosen.size()));
  Bitset covered(6);
  for (int s : chosen) covered |= sets[s];
  EXPECT_TRUE(target.IsSubsetOf(covered));
  EXPECT_EQ(k, 2);  // {0,1,2} + {3,4,5}
}

TEST(GreedyCoverTest, EmptyTargetNeedsNothing) {
  auto sets = Sets(4, {{0, 1}});
  EXPECT_EQ(GreedySetCover(sets, Bitset(4)), 0);
}

TEST(GreedyCoverTest, ClassicLogFactorInstance) {
  // Greedy can be suboptimal: elements 0..5, optimal = 2 rows, greedy
  // takes the big diagonal set first.
  auto sets = Sets(6, {{0, 2, 4}, {1, 3, 5}, {0, 1}, {2, 3}, {4, 5, 0, 1}});
  Bitset target = Bitset::FromVector(6, {0, 1, 2, 3, 4, 5});
  int greedy = GreedySetCover(sets, target);
  int exact = ExactSetCover(sets, target);
  EXPECT_EQ(exact, 2);
  EXPECT_GE(greedy, exact);
}

// The mask-restricted overload must match the index-vector form exactly:
// same count, same picks, same rng draw sequence afterwards. Universes
// above 64 elements exercise the multi-word scan.
TEST(GreedyCoverTest, MaskOverloadMatchesVectorForm) {
  for (int universe : {10, 70, 130}) {
    Rng gen(universe);
    std::vector<std::vector<int>> raw;
    for (int s = 0; s < 3 * universe / 2; ++s) {
      std::vector<int> elems;
      for (int e = 0; e < universe; ++e)
        if (gen.Next() % 4 == 0) elems.push_back(e);
      raw.push_back(elems);
    }
    // Guarantee coverability whatever the random draw produced.
    std::vector<int> all(universe);
    for (int e = 0; e < universe; ++e) all[e] = e;
    raw.push_back(all);
    auto sets = Sets(universe, raw);
    Bitset target(universe);
    for (int e = 0; e < universe; ++e)
      if (gen.Next() % 2 == 0) target.Set(e);
    // Restrict to the sets that intersect the target, plus a few
    // non-intersecting ones (which must influence nothing).
    std::vector<int> active_list;
    Bitset active_mask(static_cast<int>(sets.size()));
    for (size_t s = 0; s < sets.size(); ++s) {
      if (sets[s].Intersects(target) || s % 5 == 0) {
        active_list.push_back(static_cast<int>(s));
        active_mask.Set(static_cast<int>(s));
      }
    }
    Rng rng_list(7), rng_mask(7);
    std::vector<int> chosen_list, chosen_mask;
    int k_list =
        GreedySetCover(sets, active_list, target, &rng_list, &chosen_list);
    int k_mask =
        GreedySetCover(sets, active_mask, target, &rng_mask, &chosen_mask);
    EXPECT_EQ(k_list, k_mask) << "universe " << universe;
    EXPECT_EQ(chosen_list, chosen_mask) << "universe " << universe;
    EXPECT_EQ(rng_list.Next(), rng_mask.Next()) << "universe " << universe;
  }
}

TEST(ExactCoverTest, FindsOptimum) {
  auto sets = Sets(5, {{0}, {1}, {2}, {3}, {4}, {0, 1, 2, 3, 4}});
  Bitset target = Bitset::FromVector(5, {0, 1, 2, 3, 4});
  std::vector<int> chosen;
  EXPECT_EQ(ExactSetCover(sets, target, &chosen), 1);
  EXPECT_EQ(chosen, (std::vector<int>{5}));
}

TEST(ExactCoverTest, WitnessCoversTarget) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    int universe = 4 + rng.UniformInt(12);
    int num_sets = 3 + rng.UniformInt(10);
    std::vector<Bitset> sets;
    Bitset unionall(universe);
    for (int s = 0; s < num_sets; ++s) {
      Bitset b(universe);
      int size = 1 + rng.UniformInt(universe / 2 + 1);
      for (int i = 0; i < size; ++i) b.Set(rng.UniformInt(universe));
      sets.push_back(b);
      unionall |= b;
    }
    Bitset target = unionall;  // cover everything coverable
    std::vector<int> chosen;
    int k = ExactSetCover(sets, target, &chosen);
    Bitset covered(universe);
    for (int s : chosen) covered |= sets[s];
    EXPECT_TRUE(target.IsSubsetOf(covered));
    EXPECT_EQ(static_cast<int>(chosen.size()), k);
    // Exact never worse than greedy.
    EXPECT_LE(k, GreedySetCover(sets, target));
  }
}

TEST(ExactCoverTest, BruteForceAgreement) {
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    int universe = 3 + rng.UniformInt(7);   // <= 9 elements
    int num_sets = 2 + rng.UniformInt(7);   // <= 8 sets: 2^8 subsets
    std::vector<Bitset> sets;
    Bitset unionall(universe);
    for (int s = 0; s < num_sets; ++s) {
      Bitset b(universe);
      int size = 1 + rng.UniformInt(universe);
      for (int i = 0; i < size; ++i) b.Set(rng.UniformInt(universe));
      sets.push_back(b);
      unionall |= b;
    }
    // Brute force over all subsets of the candidate sets.
    int best = num_sets + 1;
    for (int mask = 0; mask < (1 << num_sets); ++mask) {
      Bitset covered(universe);
      for (int s = 0; s < num_sets; ++s) {
        if ((mask >> s) & 1) covered |= sets[s];
      }
      if (unionall.IsSubsetOf(covered)) {
        best = std::min(best, __builtin_popcount(mask));
      }
    }
    EXPECT_EQ(ExactSetCover(sets, unionall), best) << "trial " << trial;
  }
}

}  // namespace
}  // namespace hypertree
