// The degrees-of-acyclicity hierarchy (survey):
// Berge-acyclic => beta-acyclic => alpha-acyclic, with all inclusions
// strict — verified on the classic separating examples and by property
// sweeps against brute-force definitions.

#include <gtest/gtest.h>

#include "hypergraph/acyclicity.h"
#include "hypergraph/generators.h"
#include "util/rng.h"

namespace hypertree {
namespace {

// Brute force: beta-acyclic iff every edge subset is alpha-acyclic.
bool BruteForceBeta(const Hypergraph& h) {
  int m = h.NumEdges();
  for (int mask = 1; mask < (1 << m); ++mask) {
    Hypergraph sub(h.NumVertices());
    for (int e = 0; e < m; ++e) {
      if ((mask >> e) & 1) sub.AddEdge(h.EdgeVertices(e));
    }
    if (!IsAlphaAcyclic(sub)) return false;
  }
  return true;
}

TEST(AcyclicityDegreesTest, BergeExamples) {
  // A chain of edges overlapping in single vertices is Berge-acyclic.
  Hypergraph chain(5);
  chain.AddEdge({0, 1});
  chain.AddEdge({1, 2, 3});
  chain.AddEdge({3, 4});
  EXPECT_TRUE(IsBergeAcyclic(chain));
  EXPECT_TRUE(IsBetaAcyclic(chain));
  EXPECT_TRUE(IsAlphaAcyclic(chain));
  // Two edges sharing two vertices: an incidence cycle.
  Hypergraph pair(3);
  pair.AddEdge({0, 1, 2});
  pair.AddEdge({0, 1});
  EXPECT_FALSE(IsBergeAcyclic(pair));
  EXPECT_TRUE(IsBetaAcyclic(pair));  // beta but not Berge: strictness
}

TEST(AcyclicityDegreesTest, AlphaNotBeta) {
  // Covered triangle: alpha-acyclic but the triangle subhypergraph is
  // cyclic, so not beta-acyclic.
  Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({0, 2});
  h.AddEdge({0, 1, 2});
  EXPECT_TRUE(IsAlphaAcyclic(h));
  EXPECT_FALSE(IsBetaAcyclic(h));
  EXPECT_FALSE(IsBergeAcyclic(h));
}

TEST(AcyclicityDegreesTest, TriangleIsNothing) {
  Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({0, 2});
  EXPECT_FALSE(IsAlphaAcyclic(h));
  EXPECT_FALSE(IsBetaAcyclic(h));
  EXPECT_FALSE(IsBergeAcyclic(h));
}

class DegreeHierarchyTest : public ::testing::TestWithParam<int> {};

TEST_P(DegreeHierarchyTest, ImplicationsHoldOnRandomInstances) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  int n = 4 + rng.UniformInt(5);
  // At least n edge slots so every vertex can be covered.
  int num_edges = n + rng.UniformInt(4);
  Hypergraph h = RandomHypergraph(n, num_edges, 1, std::min(4, n), seed * 3);
  bool berge = IsBergeAcyclic(h);
  bool beta = IsBetaAcyclic(h);
  bool alpha = IsAlphaAcyclic(h);
  if (berge) {
    EXPECT_TRUE(beta) << "seed " << seed;
  }
  if (beta) {
    EXPECT_TRUE(alpha) << "seed " << seed;
  }
  // Nest-point elimination agrees with the brute-force definition.
  EXPECT_EQ(beta, BruteForceBeta(h)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DegreeHierarchyTest, ::testing::Range(0, 30));

TEST(AcyclicityDegreesTest, GeneratedAcyclicFamilyIsAlphaOnly) {
  // The RandomAcyclicHypergraph family guarantees alpha; the stricter
  // notions may or may not hold but the implication direction must.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Hypergraph h = RandomAcyclicHypergraph(10, 4, seed);
    EXPECT_TRUE(IsAlphaAcyclic(h));
    if (IsBetaAcyclic(h)) {
      // fine: beta implies alpha, already checked
    } else {
      EXPECT_FALSE(IsBergeAcyclic(h)) << "seed " << seed;
    }
  }
}

TEST(AcyclicityDegreesTest, EmptyAndSingleEdge) {
  Hypergraph empty(0);
  EXPECT_TRUE(IsBergeAcyclic(empty));
  EXPECT_TRUE(IsBetaAcyclic(empty));
  Hypergraph single(4);
  single.AddEdge({0, 1, 2, 3});
  EXPECT_TRUE(IsBergeAcyclic(single));
  EXPECT_TRUE(IsBetaAcyclic(single));
}

}  // namespace
}  // namespace hypertree
