// Portfolio layer tests: feature extraction on known generator families,
// routing rules and budget splits, result correctness against the exact
// solvers, the witness invariant, and — the load-bearing property — racing
// determinism: identical winner/width/witness for every --threads value.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ghd/branch_and_bound.h"
#include "ghd/ghw_from_ordering.h"
#include "hypergraph/generators.h"
#include "hypergraph/incidence_index.h"
#include "portfolio/features.h"
#include "portfolio/portfolio.h"
#include "portfolio/router.h"

namespace hypertree {
namespace {

TEST(InstanceFeaturesTest, CliqueFamily) {
  Hypergraph h = CliqueHypergraph(8);  // binary edges on K8
  IncidenceIndex index(h);
  InstanceFeatures f = ExtractFeatures(index);
  EXPECT_EQ(f.num_vertices, 8);
  EXPECT_EQ(f.num_edges, 28);
  EXPECT_EQ(f.max_arity, 2);
  EXPECT_DOUBLE_EQ(f.mean_arity, 2.0);
  EXPECT_EQ(f.max_degree, 7);
  EXPECT_EQ(f.max_intersection, 1);  // binary edges share at most one vertex
  EXPECT_DOUBLE_EQ(f.primal_density, 1.0);
  EXPECT_FALSE(f.alpha_acyclic);
  EXPECT_EQ(f.arity_histogram[1], 28);  // bucket 1 counts arity-2 edges
  EXPECT_EQ(f.arity_histogram[0], 0);
}

TEST(InstanceFeaturesTest, AcyclicAndCycleFamilies) {
  {
    Hypergraph h = RandomAcyclicHypergraph(20, 4, 3);
    IncidenceIndex index(h);
    InstanceFeatures f = ExtractFeatures(index);
    EXPECT_TRUE(f.alpha_acyclic);
    EXPECT_EQ(f.num_vertices, h.NumVertices());
    EXPECT_EQ(f.num_edges, h.NumEdges());
  }
  {
    Hypergraph h = CycleHypergraph(10, 2);
    IncidenceIndex index(h);
    InstanceFeatures f = ExtractFeatures(index);
    EXPECT_FALSE(f.alpha_acyclic);
    EXPECT_EQ(f.max_arity, 2);
    EXPECT_EQ(f.max_intersection, 1);  // consecutive cycle edges overlap in 1
    EXPECT_EQ(f.max_degree, 2);
  }
}

TEST(RouterTest, RulesAndBudgetSplit) {
  InstanceFeatures f;
  f.alpha_acyclic = true;
  EXPECT_EQ(RouteInstance(f).rule, "acyclic");
  ASSERT_EQ(RouteInstance(f).lineup.size(), 1u);
  EXPECT_EQ(RouteInstance(f).lineup[0].kind, EngineKind::kDetK);

  f.alpha_acyclic = false;
  f.max_intersection = 2;
  f.max_arity = 3;
  RoutingPlan plan = RouteInstance(f, 160000);
  EXPECT_EQ(plan.rule, "bounded-intersection");
  ASSERT_GE(plan.lineup.size(), 2u);
  // BB leads every non-acyclic lineup: det-k can only prove ghw when the
  // static lower bound is tight, so it never gets the lead budget.
  EXPECT_EQ(plan.lineup[0].kind, EngineKind::kBbGhw);
  EXPECT_EQ(plan.lineup[0].max_nodes, 80000);  // lead: half the budget
  for (size_t i = 1; i < plan.lineup.size(); ++i) {
    EXPECT_EQ(plan.lineup[i].max_nodes, 10000);  // followers: a sixteenth
  }

  // Tiny budgets hit the per-engine floor instead of starving followers.
  RoutingPlan tiny = RouteInstance(f, 100);
  for (const EngineSpec& spec : tiny.lineup) {
    EXPECT_EQ(spec.max_nodes, 1024);
  }

  // No budget: engines stay unlimited.
  RoutingPlan unlimited = RouteInstance(f);
  for (const EngineSpec& spec : unlimited.lineup) {
    EXPECT_EQ(spec.max_nodes, 0);
  }
}

TEST(PortfolioTest, KnownFamilies) {
  struct Case {
    Hypergraph h;
    int ghw;
  };
  std::vector<Case> cases;
  cases.push_back({RandomAcyclicHypergraph(12, 4, 1), 1});
  cases.push_back({CycleHypergraph(8, 2), 2});
  cases.push_back({CliqueHypergraph(6), 3});
  for (Case& c : cases) {
    PortfolioOptions opts;
    opts.max_nodes = 50000;
    PortfolioResult pr = PortfolioGhw(c.h, opts);
    EXPECT_TRUE(pr.result.exact) << c.h.name();
    EXPECT_EQ(pr.result.upper_bound, c.ghw) << c.h.name();
    // Witness invariant: the reported ordering evaluates to the width.
    GhwEvaluator eval(c.h);
    EXPECT_EQ(eval.EvaluateOrdering(pr.result.best_ordering, CoverMode::kExact),
              pr.result.upper_bound)
        << c.h.name();
  }
}

TEST(PortfolioTest, AgreesWithBranchAndBound) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Hypergraph h = RandomHypergraph(10, 10, 2, 4, seed * 13 + 1);
    WidthResult bb = BranchAndBoundGhw(h);
    ASSERT_TRUE(bb.exact) << h.name();
    PortfolioOptions opts;
    opts.max_nodes = 200000;
    PortfolioResult pr = PortfolioGhw(h, opts);
    EXPECT_TRUE(pr.result.exact) << h.name();
    EXPECT_EQ(pr.result.upper_bound, bb.upper_bound) << h.name();
  }
}

// The acceptance property: the verdict — winner, width, exactness, node
// count, and the witness ordering itself — is bit-identical whether the
// race runs on 1, 4, or 8 threads, with node budgets doing the limiting
// (the generous wall-clock backstop never fires).
TEST(PortfolioTest, RacingDeterminismAcrossThreadCounts) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Hypergraph h = RandomHypergraph(12, 12, 2, 4, seed * 29 + 3);
    PortfolioResult ref;
    for (int pass = 0; pass < 3; ++pass) {
      const int threads[] = {1, 4, 8};
      PortfolioOptions opts;
      opts.threads = threads[pass];
      opts.max_nodes = 30000;
      opts.time_limit_seconds = 300.0;
      PortfolioResult pr = PortfolioGhw(h, opts);
      if (pass == 0) {
        ref = pr;
        continue;
      }
      EXPECT_EQ(pr.winner, ref.winner) << h.name();
      EXPECT_EQ(pr.winner_name, ref.winner_name) << h.name();
      EXPECT_EQ(pr.result.upper_bound, ref.result.upper_bound) << h.name();
      EXPECT_EQ(pr.result.lower_bound, ref.result.lower_bound) << h.name();
      EXPECT_EQ(pr.result.exact, ref.result.exact) << h.name();
      EXPECT_EQ(pr.result.nodes, ref.result.nodes) << h.name();
      EXPECT_EQ(pr.result.best_ordering, ref.result.best_ordering) << h.name();
      EXPECT_EQ(pr.plan.rule, ref.plan.rule) << h.name();
    }
  }
}

// Same property on an instance the race cannot close: with a tiny node
// budget nobody proves, and the no-winner verdict (best witnessed width,
// summed nodes) must still be schedule-invariant.
TEST(PortfolioTest, NoWinnerVerdictIsDeterministic) {
  Hypergraph h = CircuitHypergraph(5, 20, 4);
  PortfolioResult ref;
  for (int pass = 0; pass < 3; ++pass) {
    const int threads[] = {1, 4, 8};
    PortfolioOptions opts;
    opts.threads = threads[pass];
    opts.max_nodes = 2000;
    opts.time_limit_seconds = 300.0;
    PortfolioResult pr = PortfolioGhw(h, opts);
    GhwEvaluator eval(h);
    EXPECT_EQ(eval.EvaluateOrdering(pr.result.best_ordering, CoverMode::kExact),
              pr.result.upper_bound);
    if (pass == 0) {
      ref = pr;
      continue;
    }
    EXPECT_EQ(pr.winner, ref.winner);
    EXPECT_EQ(pr.result.upper_bound, ref.result.upper_bound);
    EXPECT_EQ(pr.result.lower_bound, ref.result.lower_bound);
    EXPECT_EQ(pr.result.nodes, ref.result.nodes);
    EXPECT_EQ(pr.result.best_ordering, ref.result.best_ordering);
  }
}

TEST(PortfolioTest, EdgelessInstance) {
  Hypergraph h(3);
  PortfolioResult pr = PortfolioGhw(h);
  EXPECT_TRUE(pr.result.exact);
  EXPECT_EQ(pr.winner_name, "prologue");
}

}  // namespace
}  // namespace hypertree
