// Ablation checks for the search machinery (DESIGN.md §4): the pruning
// and reduction features must not change results, and should not expand
// more nodes than the ablated searches.

#include <gtest/gtest.h>

#include "ghd/astar.h"
#include "ghd/branch_and_bound.h"
#include "graph/generators.h"
#include "hypergraph/generators.h"
#include "td/astar.h"
#include "td/branch_and_bound.h"
#include "util/rng.h"

namespace hypertree {
namespace {

class BbAblationTest : public ::testing::TestWithParam<int> {};

TEST_P(BbAblationTest, Pr2AndReductionsPreserveTreewidth) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  int n = 8 + rng.UniformInt(5);
  Graph g = RandomGraph(n, 2 * n, seed + 77);
  int reference = -1;
  for (bool pr2 : {false, true}) {
    for (bool simplicial : {false, true}) {
      SearchOptions opts;
      opts.use_pr2 = pr2;
      opts.use_simplicial_reduction = simplicial;
      WidthResult res = BranchAndBoundTreewidth(g, opts);
      ASSERT_TRUE(res.exact);
      if (reference == -1) reference = res.upper_bound;
      EXPECT_EQ(res.upper_bound, reference)
          << "seed " << seed << " pr2=" << pr2 << " simp=" << simplicial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BbAblationTest, ::testing::Range(0, 10));

TEST(SearchAblationTest, Pr2ShrinksTheSearchTree) {
  // On symmetric instances the swap rule must cut nodes, never add them.
  for (const Graph& g : {GridGraph(4, 4), CycleGraph(12)}) {
    SearchOptions with;
    SearchOptions without;
    without.use_pr2 = false;
    // Disable the other reduction so only PR2 varies.
    with.use_simplicial_reduction = false;
    without.use_simplicial_reduction = false;
    WidthResult a = BranchAndBoundTreewidth(g, with);
    WidthResult b = BranchAndBoundTreewidth(g, without);
    ASSERT_TRUE(a.exact && b.exact);
    EXPECT_EQ(a.upper_bound, b.upper_bound);
    EXPECT_LE(a.nodes, b.nodes) << g.name();
  }
}

TEST(SearchAblationTest, DuplicateDetectionShrinksAStar) {
  Graph g = GridGraph(4, 4);
  SearchOptions with;
  SearchOptions without;
  without.use_duplicate_detection = false;
  WidthResult a = AStarTreewidth(g, with);
  WidthResult b = AStarTreewidth(g, without);
  ASSERT_TRUE(a.exact && b.exact);
  EXPECT_EQ(a.upper_bound, b.upper_bound);
  EXPECT_LE(a.nodes, b.nodes);
}

class GhwAblationTest : public ::testing::TestWithParam<int> {};

TEST_P(GhwAblationTest, Pr2PreservesGhw) {
  uint64_t seed = GetParam();
  Hypergraph h = RandomHypergraph(9, 9, 2, 4, seed * 5 + 3);
  GhwSearchOptions with;
  GhwSearchOptions without;
  without.use_pr2 = false;
  WidthResult a = BranchAndBoundGhw(h, with);
  WidthResult b = BranchAndBoundGhw(h, without);
  ASSERT_TRUE(a.exact && b.exact);
  EXPECT_EQ(a.upper_bound, b.upper_bound) << "seed " << seed;
  WidthResult c = AStarGhw(h, without);
  ASSERT_TRUE(c.exact);
  EXPECT_EQ(c.upper_bound, a.upper_bound) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GhwAblationTest, ::testing::Range(0, 10));

TEST(SearchAblationTest, AnytimeLowerBoundsAreSound) {
  // Interrupted searches must report lower bounds below the true width.
  Graph g = QueensGraph(5);  // tw 18
  for (long nodes : {5L, 50L, 500L}) {
    SearchOptions opts;
    opts.max_nodes = nodes;
    WidthResult as = AStarTreewidth(g, opts);
    EXPECT_LE(as.lower_bound, 18) << nodes;
    EXPECT_GE(as.upper_bound, 18) << nodes;
  }
}

}  // namespace
}  // namespace hypertree
