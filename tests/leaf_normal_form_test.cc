#include "td/leaf_normal_form.h"

#include <gtest/gtest.h>

#include "ghd/ghw_from_ordering.h"
#include "hypergraph/generators.h"
#include "ordering/bucket_elimination.h"
#include "ordering/heuristics.h"
#include "util/rng.h"

namespace hypertree {
namespace {

// Checks Theorem 1's contract: every LNF bag is inside some original bag.
void ExpectBagsContained(const TreeDecomposition& original,
                         const LeafNormalForm& lnf) {
  for (int p = 0; p < lnf.td.NumNodes(); ++p) {
    bool contained = false;
    for (int q = 0; q < original.NumNodes() && !contained; ++q) {
      contained = lnf.td.Bag(p).IsSubsetOf(original.Bag(q));
    }
    EXPECT_TRUE(contained) << "LNF bag " << lnf.td.Bag(p).ToString()
                           << " not inside any original bag";
  }
}

class LnfSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(LnfSweepTest, TransformProducesValidLeafNormalForm) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  Hypergraph h = RandomHypergraph(12, 14, 2, 4, seed * 31 + 5);
  Graph primal = h.PrimalGraph();
  TreeDecomposition td =
      TreeDecompositionFromOrdering(primal, MinFillOrdering(primal, &rng));
  ASSERT_TRUE(td.IsValidForHypergraph(h, nullptr));
  LeafNormalForm lnf = TransformLeafNormalForm(h, td);
  std::string why;
  EXPECT_TRUE(lnf.td.IsValidForHypergraph(h, &why)) << why;
  EXPECT_TRUE(IsLeafNormalForm(h, lnf));
  ExpectBagsContained(td, lnf);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LnfSweepTest, ::testing::Range(0, 12));

TEST(LnfTest, SingleEdgeHypergraph) {
  Hypergraph h(3);
  h.AddEdge({0, 1, 2});
  TreeDecomposition td(3);
  td.AddNode(Bitset::FromVector(3, {0, 1, 2}));
  LeafNormalForm lnf = TransformLeafNormalForm(h, td);
  EXPECT_TRUE(lnf.td.IsValidForHypergraph(h, nullptr));
  EXPECT_TRUE(IsLeafNormalForm(h, lnf));
}

TEST(LnfTest, OrderingFromLnfRespectsDcaDepths) {
  // Lemma 13: bucket-eliminating the dca-depth ordering keeps every bag
  // inside some original bag, hence width does not increase.
  Rng rng(3);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Hypergraph h = RandomHypergraph(14, 16, 2, 4, seed);
    Graph primal = h.PrimalGraph();
    TreeDecomposition td =
        TreeDecompositionFromOrdering(primal, MinFillOrdering(primal, &rng));
    EliminationOrdering sigma = OrderingFromTreeDecomposition(h, td);
    ASSERT_TRUE(IsValidOrdering(sigma, h.NumVertices()));
    EliminationTree t = BucketEliminate(primal, sigma);
    for (int v = 0; v < h.NumVertices(); ++v) {
      bool contained = false;
      for (int q = 0; q < td.NumNodes() && !contained; ++q) {
        contained = t.bags[v].IsSubsetOf(td.Bag(q));
      }
      EXPECT_TRUE(contained)
          << "seed " << seed << ": derived bag " << t.bags[v].ToString()
          << " escapes the original decomposition";
    }
    EXPECT_LE(t.width, td.Width());
  }
}

TEST(LnfTest, OrderingRecoversGhwOnExample) {
  // Theorem 2 in action: starting from a width-2 GHD-ish decomposition of
  // the thesis Example 5 hypergraph, the derived ordering achieves
  // width(sigma, H) <= 2.
  Hypergraph h(6);
  h.AddEdge({0, 1, 2});
  h.AddEdge({0, 4, 5});
  h.AddEdge({2, 3, 4});
  Graph primal = h.PrimalGraph();
  Rng rng(4);
  TreeDecomposition td =
      TreeDecompositionFromOrdering(primal, MinFillOrdering(primal, &rng));
  EliminationOrdering sigma = OrderingFromTreeDecomposition(h, td);
  GhwEvaluator eval(h);
  EXPECT_LE(eval.EvaluateOrdering(sigma, CoverMode::kExact), 2);
}

}  // namespace
}  // namespace hypertree
