#include "fhw/fractional_hypertree.h"

#include <gtest/gtest.h>

#include "ghd/branch_and_bound.h"
#include "hypergraph/generators.h"

namespace hypertree {
namespace {

TEST(FhwTest, TriangleCoverNumber) {
  // rho*(triangle of binary edges) = 1.5.
  Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({0, 2});
  EXPECT_NEAR(FractionalEdgeCoverNumber(h), 1.5, 1e-7);
}

TEST(FhwTest, SingleEdgeCoverNumberOne) {
  Hypergraph h(4);
  h.AddEdge({0, 1, 2, 3});
  EXPECT_NEAR(FractionalEdgeCoverNumber(h), 1.0, 1e-7);
}

TEST(FhwTest, FhwUpperBoundedByGhw) {
  // fhw <= ghw: the fractional width of any ordering is at most its
  // integral width.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Hypergraph h = RandomHypergraph(10, 9, 2, 4, seed * 29);
    WidthResult ghw = BranchAndBoundGhw(h);
    ASSERT_TRUE(ghw.exact);
    double fhw_of_witness = FractionalWidthOfOrdering(h, ghw.best_ordering);
    EXPECT_LE(fhw_of_witness, ghw.upper_bound + 1e-7) << "seed " << seed;
    // The heuristic upper bound is at least 1 (and usually <= ghw, but
    // only the witness-ordering inequality is guaranteed).
    double ub = FhwUpperBound(h, 3, seed);
    EXPECT_GE(ub, 1.0 - 1e-7);
  }
}

TEST(FhwTest, AcyclicHasFhwOne) {
  Hypergraph h = RandomAcyclicHypergraph(10, 4, 4);
  EXPECT_NEAR(FhwUpperBound(h, 2, 1), 1.0, 1e-7);
}

TEST(FhwTest, TriangleCycleFhwBetweenOneAndTwo) {
  // For the triangle, fhw = 1.5 (single bag with the fractional cover).
  Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({0, 2});
  double ub = FhwUpperBound(h, 2, 3);
  EXPECT_NEAR(ub, 1.5, 1e-7);
}

}  // namespace
}  // namespace hypertree
