#include "hypergraph/hypergraph.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace hypertree {
namespace {

Hypergraph Example5Hypergraph() {
  // Thesis Example 5: x1..x6, edges {x1,x2,x3}, {x1,x5,x6}, {x3,x4,x5}.
  Hypergraph h(6);
  h.AddEdge({0, 1, 2}, "C1");
  h.AddEdge({0, 4, 5}, "C2");
  h.AddEdge({2, 3, 4}, "C3");
  return h;
}

TEST(HypergraphTest, BasicAccessors) {
  Hypergraph h = Example5Hypergraph();
  EXPECT_EQ(h.NumVertices(), 6);
  EXPECT_EQ(h.NumEdges(), 3);
  EXPECT_EQ(h.EdgeVertices(0), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(h.EdgeSize(1), 3);
  EXPECT_EQ(h.MaxEdgeSize(), 3);
  EXPECT_EQ(h.EdgeName(2), "C3");
}

TEST(HypergraphTest, IncidentEdges) {
  Hypergraph h = Example5Hypergraph();
  EXPECT_EQ(h.IncidentEdges(0), (std::vector<int>{0, 1}));  // x1 in C1, C2
  EXPECT_EQ(h.IncidentEdges(3), (std::vector<int>{2}));     // x4 in C3
  EXPECT_EQ(h.VertexDegree(2), 2);
}

TEST(HypergraphTest, PrimalGraph) {
  Hypergraph h = Example5Hypergraph();
  Graph p = h.PrimalGraph();
  EXPECT_EQ(p.NumVertices(), 6);
  // Each size-3 edge contributes a triangle; edges overlap in vertices but
  // not pairs, so 9 distinct primal edges.
  EXPECT_EQ(p.NumEdges(), 9);
  EXPECT_TRUE(p.HasEdge(0, 1));
  EXPECT_TRUE(p.HasEdge(4, 5));
  EXPECT_FALSE(p.HasEdge(1, 3));
}

TEST(HypergraphTest, DualGraph) {
  Hypergraph h = Example5Hypergraph();
  Graph d = h.DualGraph();
  EXPECT_EQ(d.NumVertices(), 3);
  // All three edges pairwise share a vertex.
  EXPECT_EQ(d.NumEdges(), 3);
}

TEST(HypergraphTest, InducedSubhypergraph) {
  Hypergraph h = Example5Hypergraph();
  Bitset keep = Bitset::FromVector(6, {0, 1, 2, 3});
  std::vector<int> origin;
  Hypergraph sub = h.InducedSubhypergraph(keep, &origin);
  // C2 restricted to {x1}; C3 restricted to {x3, x4}.
  EXPECT_EQ(sub.NumEdges(), 3);
  EXPECT_EQ(origin, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sub.EdgeVertices(1), (std::vector<int>{0}));
  EXPECT_EQ(sub.EdgeVertices(2), (std::vector<int>{2, 3}));
}

TEST(HypergraphTest, InducedDropsEmptyEdges) {
  Hypergraph h = Example5Hypergraph();
  Bitset keep = Bitset::FromVector(6, {1, 2});
  std::vector<int> origin;
  Hypergraph sub = h.InducedSubhypergraph(keep, &origin);
  EXPECT_EQ(sub.NumEdges(), 2);  // C2 = {x5,x6,x1} loses all kept vertices?
  // C1 -> {1,2}; C2 -> {} dropped; C3 -> {2}.
  EXPECT_EQ(origin, (std::vector<int>{0, 2}));
}

TEST(HypergraphTest, FromGraph) {
  Graph g = CycleGraph(4);
  Hypergraph h = HypergraphFromGraph(g);
  EXPECT_EQ(h.NumVertices(), 4);
  EXPECT_EQ(h.NumEdges(), 4);
  EXPECT_EQ(h.MaxEdgeSize(), 2);
  Graph back = h.PrimalGraph();
  EXPECT_EQ(back.Edges(), g.Edges());
}

}  // namespace
}  // namespace hypertree
