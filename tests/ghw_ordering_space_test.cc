// Empirical validation of the thesis' central theorem (ch. 3, Theorem 3):
// the set of elimination orderings is a complete search space for
// generalized hypertree width — min over orderings of width(sigma, H)
// equals the true ghw computed by brute force over decompositions.
//
// Brute-forcing all decompositions directly is infeasible even for tiny
// instances, so the test cross-checks three independent routes:
//  (1) exhaustive ordering enumeration with exact covers,
//  (2) BB-ghw / A*-ghw exact searches,
//  (3) known widths of structured families.

#include <algorithm>

#include <gtest/gtest.h>

#include "ghd/astar.h"
#include "ghd/branch_and_bound.h"
#include "ghd/ghw_from_ordering.h"
#include "hypergraph/acyclicity.h"
#include "hypergraph/generators.h"

namespace hypertree {
namespace {

int ExhaustiveOrderingGhw(const Hypergraph& h) {
  int n = h.NumVertices();
  GhwEvaluator eval(h);
  std::vector<int> sigma(n);
  for (int i = 0; i < n; ++i) sigma[i] = i;
  int best = h.NumEdges();
  do {
    best = std::min(best, eval.EvaluateOrdering(sigma, CoverMode::kExact));
  } while (std::next_permutation(sigma.begin(), sigma.end()));
  return best;
}

class OrderingSpaceTest : public ::testing::TestWithParam<int> {};

TEST_P(OrderingSpaceTest, ExhaustiveMatchesExactSearches) {
  uint64_t seed = GetParam();
  Hypergraph h = RandomHypergraph(6, 3 + static_cast<int>(seed % 4), 2, 3,
                                  seed * 13 + 1);
  int exhaustive = ExhaustiveOrderingGhw(h);
  WidthResult bb = BranchAndBoundGhw(h);
  WidthResult as = AStarGhw(h);
  ASSERT_TRUE(bb.exact);
  ASSERT_TRUE(as.exact);
  EXPECT_EQ(bb.upper_bound, exhaustive) << "seed " << seed;
  EXPECT_EQ(as.upper_bound, exhaustive) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingSpaceTest, ::testing::Range(0, 15));

TEST(OrderingSpaceTest, AcyclicGhwIsOne) {
  // ghw(H) = 1 iff alpha-acyclic: orderings must realize width 1.
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Hypergraph h = RandomAcyclicHypergraph(6, 3, seed);
    ASSERT_TRUE(IsAlphaAcyclic(h));
    EXPECT_EQ(ExhaustiveOrderingGhw(h), 1) << "seed " << seed;
  }
}

TEST(OrderingSpaceTest, TriangleNeedsTwo) {
  Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({0, 2});
  EXPECT_EQ(ExhaustiveOrderingGhw(h), 2);
}

TEST(OrderingSpaceTest, CycleHypergraphsNeedTwo) {
  // Plain cycles (binary edges) have ghw 2 for any length >= 4.
  for (int len : {4, 5, 6}) {
    Hypergraph h = CycleHypergraph(len, 2);
    EXPECT_EQ(ExhaustiveOrderingGhw(h), 2) << "len " << len;
  }
}

}  // namespace
}  // namespace hypertree
