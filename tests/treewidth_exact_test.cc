#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "ordering/evaluator.h"
#include "td/astar.h"
#include "td/branch_and_bound.h"
#include "util/rng.h"

namespace hypertree {
namespace {

// Brute-force treewidth via exhaustive ordering enumeration (tiny n only).
int BruteForceTreewidth(const Graph& g) {
  int n = g.NumVertices();
  std::vector<int> sigma(n);
  for (int i = 0; i < n; ++i) sigma[i] = i;
  int best = n;
  do {
    best = std::min(best, EvaluateOrderingWidth(g, sigma));
  } while (std::next_permutation(sigma.begin(), sigma.end()));
  return best;
}

TEST(TreewidthExactTest, KnownSmallGraphs) {
  struct Case {
    Graph g;
    int tw;
  };
  std::vector<Case> cases;
  cases.push_back({PathGraph(6), 1});
  cases.push_back({CycleGraph(6), 2});
  cases.push_back({CompleteGraph(5), 4});
  cases.push_back({GridGraph(3, 3), 3});
  cases.push_back({GridGraph(4, 4), 4});
  for (auto& c : cases) {
    WidthResult bb = BranchAndBoundTreewidth(c.g);
    EXPECT_TRUE(bb.exact) << c.g.name();
    EXPECT_EQ(bb.upper_bound, c.tw) << "BB on " << c.g.name();
    WidthResult astar = AStarTreewidth(c.g);
    EXPECT_TRUE(astar.exact) << c.g.name();
    EXPECT_EQ(astar.upper_bound, c.tw) << "A* on " << c.g.name();
  }
}

TEST(TreewidthExactTest, WitnessOrderingAchievesReportedWidth) {
  Graph g = GridGraph(4, 4);
  WidthResult bb = BranchAndBoundTreewidth(g);
  ASSERT_TRUE(IsValidOrdering(bb.best_ordering, 16));
  EXPECT_EQ(EvaluateOrderingWidth(g, bb.best_ordering), bb.upper_bound);
  WidthResult as = AStarTreewidth(g);
  ASSERT_TRUE(IsValidOrdering(as.best_ordering, 16));
  EXPECT_EQ(EvaluateOrderingWidth(g, as.best_ordering), as.upper_bound);
}

class ExactAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(ExactAgreementTest, BbAStarAndBruteForceAgree) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  int n = 5 + rng.UniformInt(3);  // 5..7 vertices: brute force feasible
  int max_m = n * (n - 1) / 2;
  int m = rng.UniformInt(max_m + 1);
  Graph g = RandomGraph(n, m, seed + 500);
  int brute = BruteForceTreewidth(g);
  WidthResult bb = BranchAndBoundTreewidth(g);
  WidthResult as = AStarTreewidth(g);
  EXPECT_TRUE(bb.exact);
  EXPECT_TRUE(as.exact);
  EXPECT_EQ(bb.upper_bound, brute) << "BB seed " << seed;
  EXPECT_EQ(as.upper_bound, brute) << "A* seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactAgreementTest, ::testing::Range(0, 25));

TEST(TreewidthExactTest, AblationsStillExact) {
  Graph g = GridGraph(4, 4);
  for (bool pr2 : {false, true}) {
    for (bool simplicial : {false, true}) {
      SearchOptions opts;
      opts.use_pr2 = pr2;
      opts.use_simplicial_reduction = simplicial;
      WidthResult bb = BranchAndBoundTreewidth(g, opts);
      EXPECT_TRUE(bb.exact);
      EXPECT_EQ(bb.upper_bound, 4) << "pr2=" << pr2 << " simp=" << simplicial;
    }
  }
  SearchOptions no_dedup;
  no_dedup.use_duplicate_detection = false;
  WidthResult as = AStarTreewidth(GridGraph(3, 3), no_dedup);
  EXPECT_TRUE(as.exact);
  EXPECT_EQ(as.upper_bound, 3);
}

TEST(TreewidthExactTest, BudgetedRunReturnsBounds) {
  Graph g = QueensGraph(6);  // tw 25: too hard for a tiny budget
  SearchOptions opts;
  opts.max_nodes = 50;
  WidthResult bb = BranchAndBoundTreewidth(g, opts);
  EXPECT_LE(bb.lower_bound, bb.upper_bound);
  WidthResult as = AStarTreewidth(g, opts);
  EXPECT_LE(as.lower_bound, as.upper_bound);
  EXPECT_GE(as.lower_bound, 1);
}

TEST(TreewidthExactTest, KTreesAreExactlyK) {
  for (int k : {2, 3}) {
    Graph g = RandomKTree(12, k, 1.0, 40 + k);
    WidthResult bb = BranchAndBoundTreewidth(g);
    EXPECT_TRUE(bb.exact);
    EXPECT_EQ(bb.upper_bound, k);
  }
}

TEST(TreewidthExactTest, QueensFiveByFive) {
  // Table 5.1: queen5_5 has treewidth 18. Budgeted run: if the search
  // completes it must report exactly 18; otherwise the bounds bracket it.
  SearchOptions opts;
  opts.time_limit_seconds = 10.0;
  WidthResult as = AStarTreewidth(QueensGraph(5), opts);
  EXPECT_GE(as.upper_bound, 18);
  EXPECT_LE(as.lower_bound, 18);
  if (as.exact) {
    EXPECT_EQ(as.upper_bound, 18);
  }
}

TEST(TreewidthExactTest, EmptyAndSingleton) {
  WidthResult r0 = BranchAndBoundTreewidth(Graph(0));
  EXPECT_TRUE(r0.exact);
  EXPECT_EQ(r0.upper_bound, 0);
  WidthResult r1 = AStarTreewidth(Graph(1));
  EXPECT_TRUE(r1.exact);
  EXPECT_EQ(r1.upper_bound, 0);
}

}  // namespace
}  // namespace hypertree
