// Robustness sweeps for the input parsers: malformed and randomly mangled
// inputs must fail cleanly (error + nullopt), never crash, and valid
// inputs must survive mangling-neutral edits.

#include <sstream>

#include <gtest/gtest.h>

#include "graph/dimacs.h"
#include "hypergraph/parser.h"
#include "td/pace.h"
#include "util/rng.h"

namespace hypertree {
namespace {

TEST(ParserRobustnessTest, HypergraphGarbageInputs) {
  const char* inputs[] = {
      "(",
      ")",
      "()",
      "a(",
      "a()",
      "a(b))",
      "a(b),(",
      "a(b,c), d",
      "...",
      ",,,",
      "a(b) c(d",
      "0^&(x)",
  };
  for (const char* text : inputs) {
    std::string error;
    auto h = ReadHypergraphFromString(text, &error);
    if (!h.has_value()) {
      EXPECT_FALSE(error.empty()) << "input: " << text;
    }
  }
}

TEST(ParserRobustnessTest, RandomMangledHypergraphs) {
  Rng rng(5);
  std::string base = "edge1(a,b,c),\nedge2(c,d),\nedge3(d,e,a).";
  for (int trial = 0; trial < 200; ++trial) {
    std::string mangled = base;
    int edits = 1 + rng.UniformInt(4);
    for (int e = 0; e < edits; ++e) {
      int pos = rng.UniformInt(static_cast<int>(mangled.size()));
      char c = static_cast<char>(32 + rng.UniformInt(95));
      if (rng.Bernoulli(0.5)) {
        mangled[pos] = c;
      } else {
        mangled.erase(pos, 1);
      }
    }
    std::string error;
    auto h = ReadHypergraphFromString(mangled, &error);  // must not crash
    if (h.has_value()) {
      EXPECT_GE(h->NumEdges(), 1);
    }
  }
}

TEST(ParserRobustnessTest, DimacsGarbageInputs) {
  const char* inputs[] = {
      "p edge\n", "p edge -1 0\n", "p edge 2 1\ne 0 1\n",
      "p edge 2 1\ne a b\n", "x 1 2\n", "p edge 1 0\np edge 2 0\n",
  };
  for (const char* text : inputs) {
    std::istringstream in(text);
    std::string error;
    auto g = ReadDimacsGraph(in, &error);
    // "p edge 1 0 / p edge 2 0" re-parses the header; anything goes as
    // long as it does not crash. For the clearly bad ones expect failure.
    if (!g.has_value()) {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(ParserRobustnessTest, PaceTdGarbageInputs) {
  const char* inputs[] = {
      "s td\n", "s td 1 1\n", "s td 1 1 1\nb 2 1\n",
      "s td 2 1 2\nb 1 1\nb 2 2\n9 9\n", "s td 1 1 1\nb 1 1\nx\n",
  };
  for (const char* text : inputs) {
    std::istringstream in(text);
    std::string error;
    auto td = ReadPaceTreeDecomposition(in, &error);
    if (!td.has_value()) {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(ParserRobustnessTest, LongIdentifiers) {
  std::string big(5000, 'x');
  std::string text = "e(" + big + "," + big + "y).";
  auto h = ReadHypergraphFromString(text);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->NumVertices(), 2);
  EXPECT_EQ(h->VertexName(0).size(), 5000u);
}

}  // namespace
}  // namespace hypertree
