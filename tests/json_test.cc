#include "util/json.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace hypertree {
namespace {

TEST(JsonTest, ScalarDumps) {
  EXPECT_EQ(Json().Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(-7L).Dump(), "-7");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
  EXPECT_EQ(Json(1.5).Dump(), "1.5");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json j = Json::Object();
  j.Set("zeta", 1).Set("alpha", 2).Set("mid", 3);
  EXPECT_EQ(j.Dump(), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
}

TEST(JsonTest, SetOverwritesInPlaceKeepingPosition) {
  Json j = Json::Object();
  j.Set("a", 1).Set("b", 2).Set("a", 9);
  EXPECT_EQ(j.Dump(), "{\"a\":9,\"b\":2}");
  ASSERT_NE(j.Find("a"), nullptr);
  EXPECT_EQ(j.Find("a")->AsInt(), 9);
  EXPECT_EQ(j.Find("missing"), nullptr);
}

TEST(JsonTest, NestedStructures) {
  Json arr = Json::Array();
  arr.Append(1).Append("two").Append(Json());
  Json j = Json::Object();
  j.Set("list", std::move(arr)).Set("obj", Json::Object().Set("k", true));
  EXPECT_EQ(j.Dump(), "{\"list\":[1,\"two\",null],\"obj\":{\"k\":true}}");
}

TEST(JsonTest, StringEscaping) {
  Json j = Json::Object();
  j.Set("s", "a\"b\\c\nd\te\rf");
  EXPECT_EQ(j.Dump(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\\rf\"}");
  std::string ctrl = "x";
  ctrl.push_back('\x01');
  EXPECT_EQ(Json(ctrl).Dump(), "\"x\\u0001\"");
}

TEST(JsonTest, DoubleFormattingRoundTrips) {
  for (double v : {0.0, 1.0, -1.25, 0.1, 1e-9, 12345.6789, 1e20}) {
    std::string dumped = Json(v).Dump();
    auto parsed = Json::Parse(dumped);
    ASSERT_TRUE(parsed.has_value()) << dumped;
    EXPECT_EQ(parsed->AsDouble(), v) << dumped;
  }
  // Non-finite values have no JSON representation and serialize as null.
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).Dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).Dump(), "null");
}

TEST(JsonTest, DumpIsDeterministic) {
  auto build = [] {
    Json j = Json::Object();
    j.Set("bench", "unit").Set("width", 3).Set("wall_ms", 1.25);
    j.Set("counters", Json::Object().Set("hits", 10L).Set("misses", 2L));
    return j.Dump();
  };
  // Byte-identical across builds: the record writer relies on this to
  // make BENCH.json diffs meaningful.
  EXPECT_EQ(build(), build());
  EXPECT_EQ(build(),
            "{\"bench\":\"unit\",\"width\":3,\"wall_ms\":1.25,"
            "\"counters\":{\"hits\":10,\"misses\":2}}");
}

TEST(JsonTest, ParseRoundTripsRecords) {
  const std::string doc =
      "{\"bench\":\"b\",\"instance\":\"i\",\"algorithm\":\"a\",\"width\":3,"
      "\"exact\":true,\"lower_bound\":-1,\"nodes\":120,\"wall_ms\":0.5,"
      "\"deterministic\":false,\"counters\":{\"cache_hits\":7}}";
  auto parsed = Json::Parse(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Dump(), doc);
  EXPECT_EQ(parsed->Find("width")->AsInt(), 3);
  EXPECT_TRUE(parsed->Find("exact")->AsBool());
  EXPECT_FALSE(parsed->Find("deterministic")->AsBool());
  EXPECT_EQ(parsed->Find("counters")->Find("cache_hits")->AsInt(), 7);
  EXPECT_EQ(parsed->Find("wall_ms")->AsDouble(), 0.5);
}

TEST(JsonTest, ParseHandlesWhitespaceAndEscapes) {
  auto parsed = Json::Parse(" { \"a\" : [ 1 , -2.5 , \"x\\u0041y\" ] } ");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Dump(), "{\"a\":[1,-2.5,\"xAy\"]}");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(Json::Parse("", &error).has_value());
  EXPECT_FALSE(Json::Parse("{", &error).has_value());
  EXPECT_FALSE(Json::Parse("{\"a\":}", &error).has_value());
  EXPECT_FALSE(Json::Parse("[1,]", &error).has_value());
  EXPECT_FALSE(Json::Parse("tru", &error).has_value());
  EXPECT_FALSE(Json::Parse("1 2", &error).has_value());  // trailing garbage
  EXPECT_FALSE(error.empty());
}

TEST(JsonTest, TypedAccessorFallbacks) {
  Json s("text");
  EXPECT_EQ(s.AsInt(99), 99);
  EXPECT_EQ(s.AsDouble(2.5), 2.5);
  EXPECT_FALSE(s.AsBool(false));
  Json i(7);
  EXPECT_EQ(i.AsDouble(), 7.0);  // ints promote to double
  EXPECT_EQ(i.AsInt(), 7);
}

}  // namespace
}  // namespace hypertree
