#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"

namespace hypertree {
namespace {

TEST(GeneratorsTest, GridGraphShape) {
  Graph g = GridGraph(3, 4);
  EXPECT_EQ(g.NumVertices(), 12);
  // Edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8.
  EXPECT_EQ(g.NumEdges(), 17);
  EXPECT_TRUE(IsConnected(g));
}

TEST(GeneratorsTest, QueensGraphMatchesDimacs) {
  // The DIMACS queen .col files list every edge twice, so the table's edge
  // counts (320/580/952) are twice the simple-graph counts checked here.
  Graph q5 = QueensGraph(5);
  EXPECT_EQ(q5.NumVertices(), 25);
  EXPECT_EQ(q5.NumEdges(), 160);
  Graph q6 = QueensGraph(6);
  EXPECT_EQ(q6.NumVertices(), 36);
  EXPECT_EQ(q6.NumEdges(), 290);
  Graph q7 = QueensGraph(7);
  EXPECT_EQ(q7.NumVertices(), 49);
  EXPECT_EQ(q7.NumEdges(), 476);
}

TEST(GeneratorsTest, MycielskiMatchesDimacs) {
  // DIMACS myciel3: 11 vertices, 20 edges; myciel4: 23/71; myciel5: 47/236.
  Graph m3 = MycielskiGraph(4);  // M_4 in the iterated construction
  EXPECT_EQ(m3.NumVertices(), 11);
  EXPECT_EQ(m3.NumEdges(), 20);
  Graph m4 = MycielskiGraph(5);
  EXPECT_EQ(m4.NumVertices(), 23);
  EXPECT_EQ(m4.NumEdges(), 71);
  Graph m5 = MycielskiGraph(6);
  EXPECT_EQ(m5.NumVertices(), 47);
  EXPECT_EQ(m5.NumEdges(), 236);
}

TEST(GeneratorsTest, CompleteCyclePath) {
  EXPECT_EQ(CompleteGraph(6).NumEdges(), 15);
  EXPECT_EQ(CycleGraph(6).NumEdges(), 6);
  EXPECT_EQ(PathGraph(6).NumEdges(), 5);
}

TEST(GeneratorsTest, RandomGraphExactEdgeCount) {
  Graph g = RandomGraph(50, 200, 7);
  EXPECT_EQ(g.NumVertices(), 50);
  EXPECT_EQ(g.NumEdges(), 200);
}

TEST(GeneratorsTest, RandomGraphDeterministicInSeed) {
  Graph a = RandomGraph(30, 100, 11);
  Graph b = RandomGraph(30, 100, 11);
  EXPECT_EQ(a.Edges(), b.Edges());
  Graph c = RandomGraph(30, 100, 12);
  EXPECT_NE(a.Edges(), c.Edges());
}

TEST(GeneratorsTest, FullKTreeDegeneracyIsK) {
  Graph g = RandomKTree(30, 4, 1.0, 3);
  // A k-tree has degeneracy exactly k (and treewidth k).
  EXPECT_EQ(Degeneracy(g), 4);
  EXPECT_TRUE(IsConnected(g));
}

}  // namespace
}  // namespace hypertree
