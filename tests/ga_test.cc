#include "ga/ga.h"

#include <gtest/gtest.h>

#include "ga/ga_ghw.h"
#include "ga/ga_tw.h"
#include "graph/generators.h"
#include "hypergraph/generators.h"
#include "ordering/evaluator.h"
#include "ordering/heuristics.h"
#include "td/branch_and_bound.h"

namespace hypertree {
namespace {

GaConfig SmallConfig(uint64_t seed) {
  GaConfig cfg;
  cfg.population_size = 60;
  cfg.max_iterations = 150;
  cfg.tournament_size = 3;
  cfg.seed = seed;
  return cfg;
}

TEST(GaTest, FindsTreewidthOfEasyGraphs) {
  // Paths need a near-perfect leaf-elimination ordering (a needle for a
  // GA), so only near-optimality is asserted there.
  int path = GaTreewidth(PathGraph(12), SmallConfig(1)).best_fitness;
  EXPECT_GE(path, 1);
  EXPECT_LE(path, 2);
  EXPECT_EQ(GaTreewidth(CycleGraph(12), SmallConfig(2)).best_fitness, 2);
  EXPECT_EQ(GaTreewidth(CompleteGraph(7), SmallConfig(3)).best_fitness, 6);
}

TEST(GaTest, BestOrderingMatchesReportedFitness) {
  Graph g = GridGraph(4, 4);
  GaResult res = GaTreewidth(g, SmallConfig(4));
  ASSERT_TRUE(IsValidOrdering(res.best, 16));
  EXPECT_EQ(EvaluateOrderingWidth(g, res.best), res.best_fitness);
}

TEST(GaTest, NeverBelowExactTreewidth) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = RandomGraph(14, 30, seed);
    WidthResult exact = BranchAndBoundTreewidth(g);
    ASSERT_TRUE(exact.exact);
    GaResult ga = GaTreewidth(g, SmallConfig(seed));
    EXPECT_GE(ga.best_fitness, exact.upper_bound) << "seed " << seed;
  }
}

TEST(GaTest, DeterministicForFixedSeed) {
  Graph g = GridGraph(5, 5);
  GaResult a = GaTreewidth(g, SmallConfig(11));
  GaResult b = GaTreewidth(g, SmallConfig(11));
  EXPECT_EQ(a.best_fitness, b.best_fitness);
  EXPECT_EQ(a.best, b.best);
}

TEST(GaTest, AllOperatorCombinationsRun) {
  Graph g = GridGraph(3, 3);
  for (CrossoverOp cx : kAllCrossovers) {
    for (MutationOp mu : kAllMutations) {
      GaConfig cfg = SmallConfig(5);
      cfg.population_size = 10;
      cfg.max_iterations = 5;
      cfg.crossover = cx;
      cfg.mutation = mu;
      GaResult res = GaTreewidth(g, cfg);
      EXPECT_GE(res.best_fitness, 3);  // tw of 3x3 grid
      EXPECT_TRUE(IsValidOrdering(res.best, 9));
    }
  }
}

TEST(GaTest, EvaluationCountMatchesSchedule) {
  GaConfig cfg = SmallConfig(6);
  cfg.population_size = 10;
  cfg.max_iterations = 7;
  GaResult res = GaTreewidth(GridGraph(3, 3), cfg);
  EXPECT_EQ(res.evaluations, 10 + 10 * 7);
  EXPECT_EQ(res.iterations, 7);
}

TEST(GaGhwTest, FindsGhwOfEasyHypergraphs) {
  // Acyclic: ghw 1; cycle: 2; clique_6: 3.
  EXPECT_EQ(GaGhw(RandomAcyclicHypergraph(10, 3, 1), SmallConfig(7),
                  CoverMode::kExact)
                .best_fitness,
            1);
  EXPECT_EQ(GaGhw(CycleHypergraph(8, 2), SmallConfig(8)).best_fitness, 2);
  EXPECT_EQ(GaGhw(CliqueHypergraph(6), SmallConfig(9)).best_fitness, 3);
}

TEST(GaGhwTest, ExactCoversNeverWorseThanGreedy) {
  Hypergraph h = RandomHypergraph(14, 16, 2, 4, 33);
  int exact =
      GaGhw(h, SmallConfig(10), CoverMode::kExact).best_fitness;
  int greedy = GaGhw(h, SmallConfig(10), CoverMode::kGreedy).best_fitness;
  EXPECT_LE(exact, greedy + 1);  // greedy fitness noise can flip by one
  EXPECT_GE(exact, 1);
}

TEST(GaTest, HeuristicSeedingFixesChainFamilies) {
  // The unseeded GA loses to bucket elimination on the chain-structured
  // adder/bridge families (thesis Table 7.1); seeding the population with
  // greedy orderings recovers the known ghw of 2.
  GaConfig cfg = SmallConfig(13);
  cfg.max_iterations = 30;
  Hypergraph adder = AdderHypergraph(10);
  GaResult seeded = GaGhw(adder, cfg, CoverMode::kExact,
                          /*seed_with_heuristics=*/true);
  EXPECT_LE(seeded.best_fitness, 2);
  Hypergraph bridge = BridgeHypergraph(8);
  GaResult seeded2 = GaGhw(bridge, cfg, CoverMode::kExact,
                           /*seed_with_heuristics=*/true);
  EXPECT_LE(seeded2.best_fitness, 2);
}

TEST(GaTest, SeededNeverWorseThanItsSeeds) {
  Graph g = QueensGraph(5);
  int minfill = EvaluateOrderingWidth(g, MinFillOrdering(g, nullptr));
  GaConfig cfg = SmallConfig(14);
  cfg.max_iterations = 20;
  GaResult res = GaTreewidth(g, cfg, /*seed_with_heuristics=*/true);
  EXPECT_LE(res.best_fitness, minfill);
}

TEST(GaTest, TimeLimitRespected) {
  GaConfig cfg = SmallConfig(12);
  cfg.max_iterations = 1000000;
  cfg.time_limit_seconds = 0.2;
  GaResult res = GaTreewidth(GridGraph(6, 6), cfg);
  EXPECT_LT(res.seconds, 5.0);
  EXPECT_GE(res.best_fitness, 6);
}

}  // namespace
}  // namespace hypertree
